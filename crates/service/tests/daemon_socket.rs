//! End-to-end daemon exercise over a real loopback socket: streaming
//! requests in, classified documents out, predictive admission, warm
//! cache generations, and the graceful drain — all through the same
//! byte path the CLI front ends use.

use cyclecover_service::{CalibrationRow, CertCache, CostModel, Daemon, DaemonConfig, DaemonStats};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

fn row(n: u32, nodes: u64, wall_ms: f64) -> CalibrationRow {
    CalibrationRow {
        n,
        objective: "find_optimal".to_string(),
        symmetry: "root".to_string(),
        memo: true,
        nodes,
        wall_ms,
    }
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read line");
    assert!(line.ends_with('\n'), "daemon lines are newline-terminated");
    line.trim_end().to_string()
}

#[test]
fn daemon_round_trips_streams_predicts_and_drains() {
    let mut daemon = Daemon::bind("127.0.0.1:0".parse().unwrap(), DaemonConfig::default())
        .expect("bind loopback");
    // A deliberately lopsided model: n = 6 is cheap and exactly known,
    // n = 10 is exactly known to be hopeless — so a tight deadline on
    // n = 10 must be refused at admission, regardless of what the
    // committed calibration table says this week.
    daemon.set_cost_model(Some(CostModel::new(vec![
        row(6, 100, 0.05),
        row(10, u64::MAX / 2, 1e9),
    ])));
    let addr = daemon.local_addr().expect("local addr");
    let server = std::thread::spawn(move || daemon.run());

    // --- Connection 1: stream four lines, half-close, collect answers.
    let (mut w1, mut r1) = connect(addr);
    w1.write_all(
        concat!(
            r#"{"format": "cyclecover-request", "version": 1, "id": "a", "n": 6}"#,
            "\n",
            r#"{"format": "cyclecover-request", "version": 1, "id": "b", "n": 6}"#,
            "\n",
            "this is not json\n",
            r#"{"format": "cyclecover-request", "version": 1, "id": "doomed", "n": 10, "deadline_ms": 1}"#,
            "\n",
        )
        .as_bytes(),
    )
    .expect("write jobs");
    // Half-close: the daemon must keep the connection alive until the
    // in-flight jobs are answered, then close it.
    w1.shutdown(Shutdown::Write).expect("half-close");

    let mut docs = Vec::new();
    loop {
        let mut line = String::new();
        if r1.read_line(&mut line).expect("read") == 0 {
            break; // daemon reaped the drained connection
        }
        docs.push(line.trim_end().to_string());
    }
    assert_eq!(docs.len(), 4, "four lines in, four documents out: {docs:?}");

    let rejects: Vec<&String> = docs
        .iter()
        .filter(|d| d.contains("\"format\": \"cyclecover-reject\""))
        .collect();
    let solutions: Vec<&String> = docs
        .iter()
        .filter(|d| d.contains("\"format\": \"cyclecover-solution\""))
        .collect();
    assert_eq!(rejects.len(), 2);
    assert_eq!(solutions.len(), 2);
    assert!(
        rejects.iter().any(|d| d.contains("\"reason\": \"parse\"")),
        "the malformed line is refused with a parse reject: {rejects:?}"
    );
    let predicted = rejects
        .iter()
        .find(|d| d.contains("\"reason\": \"predicted_unmeetable\""))
        .expect("the hopeless deadline is refused at admission");
    assert!(predicted.contains("\"id\": \"doomed\""));
    assert!(
        predicted.contains("\"predicted_nodes\":"),
        "the refusal carries its evidence: {predicted}"
    );
    for id in ["\"id\": \"a\"", "\"id\": \"b\""] {
        assert!(
            solutions.iter().any(|d| d.contains(id)),
            "each admitted job is answered exactly once: {solutions:?}"
        );
    }
    assert!(
        solutions.iter().all(|d| d.contains("\"predicted_nodes\":")),
        "answers for exactly-calibrated shapes audit the prediction: {solutions:?}"
    );

    // --- Connection 2: warm generation, live stats, graceful drain.
    let (mut w2, mut r2) = connect(addr);
    writeln!(
        w2,
        r#"{{"format": "cyclecover-request", "version": 1, "id": "c", "n": 6}}"#
    )
    .expect("write warm job");
    let warm = read_line(&mut r2);
    assert!(warm.contains("\"format\": \"cyclecover-solution\""));
    assert!(warm.contains("\"id\": \"c\""));

    writeln!(w2, r#"{{"format": "cyclecover-control", "version": 1, "op": "stats"}}"#)
        .expect("write stats control");
    let live = read_line(&mut r2);
    let live_stats = DaemonStats::from_json(&live).expect("live stats parse");
    assert_eq!(live_stats.jobs_received, 3);
    assert_eq!(live_stats.rejected_parse, 1);
    assert_eq!(live_stats.rejected_predicted, 1);

    writeln!(w2, r#"{{"format": "cyclecover-control", "version": 1, "op": "shutdown"}}"#)
        .expect("write shutdown control");
    let last = read_line(&mut r2);
    let final_doc = DaemonStats::from_json(&last).expect("final stats parse");
    let mut eof = String::new();
    assert_eq!(r2.read_line(&mut eof).expect("post-drain read"), 0);

    let stats = server.join().expect("daemon thread");
    assert_eq!(stats.connections_accepted, 2);
    assert_eq!(stats.jobs_received, 3, "a, b, and c were admitted");
    assert_eq!(stats.jobs_answered, 3);
    assert_eq!(stats.unstarted, 0, "nothing was abandoned by the drain");
    assert_eq!(stats.rejected_parse, 1);
    assert_eq!(stats.rejected_predicted, 1);
    assert!(stats.generations >= 2, "two separate micro-batch generations");
    assert!(
        stats.warm_universe_hits >= 1,
        "connection 2 reused the universe built for connection 1: {stats:?}"
    );
    assert_eq!(final_doc.jobs_answered, stats.jobs_answered);
    assert_eq!(final_doc.rejected_predicted, stats.rejected_predicted);
}

#[test]
fn cert_cache_serves_repeats_and_persists_across_generations() {
    let save = std::env::temp_dir().join("cyclecover_daemon_cert_cache_test.json");
    let _ = std::fs::remove_file(&save);
    let mut daemon = Daemon::bind("127.0.0.1:0".parse().unwrap(), DaemonConfig::default())
        .expect("bind loopback");
    daemon.set_cert_cache(CertCache::new(), Some(save.clone()));
    let addr = daemon.local_addr().expect("local addr");
    let server = std::thread::spawn(move || daemon.run());

    let (mut w, mut r) = connect(addr);
    writeln!(
        w,
        r#"{{"format": "cyclecover-request", "version": 1, "id": "first", "n": 6}}"#
    )
    .expect("write cold job");
    // Waiting for the answer ends the dispatch generation, so the next
    // job arrives in a new one — against the now-warm certificate cache.
    let cold = read_line(&mut r);
    assert!(cold.contains("\"id\": \"first\""));
    assert!(cold.contains("\"cached\": false"), "cold answer ran the kernel: {cold}");

    writeln!(
        w,
        r#"{{"format": "cyclecover-request", "version": 1, "id": "again", "n": 6}}"#
    )
    .expect("write warm job");
    let warm = read_line(&mut r);
    assert!(warm.contains("\"id\": \"again\""));
    assert!(
        warm.contains("\"cached\": true"),
        "the repeat must answer from the certificate cache: {warm}"
    );
    assert!(
        warm.contains("\"nodes\": 0"),
        "a cached answer burns zero kernel nodes: {warm}"
    );

    writeln!(w, r#"{{"format": "cyclecover-control", "version": 1, "op": "shutdown"}}"#)
        .expect("write shutdown control");
    let last = read_line(&mut r);
    let final_stats = DaemonStats::from_json(&last).expect("final stats parse");
    assert_eq!(final_stats.cert_cache_hits, 1);
    assert_eq!(final_stats.cert_cache_entries, 1);

    let stats = server.join().expect("daemon thread");
    assert_eq!(stats.cert_cache_hits, 1);

    // The cache survived to disk and re-loads with the entry intact.
    let doc = std::fs::read_to_string(&save).expect("cache file written");
    let reloaded = CertCache::from_json(&doc).expect("persisted cache loads");
    assert_eq!(reloaded.len(), 1);
    assert_eq!(reloaded.rejected_on_load(), 0);
    let _ = std::fs::remove_file(&save);
}
