//! Deep round trips for the daemon-side examples in
//! `docs/wire-format.md` (the structural pass lives in
//! `crates/io/tests/wire_format_doc.rs`, below this layer): daemon-stats
//! examples must survive `from_json → daemon_stats_json → from_json`,
//! calibration examples must survive `from_json → to_json → from_json`,
//! control examples must classify through the real admission layer, and
//! the documented predictive reject must agree with the committed table.

use cyclecover_io::json::{Json, SolveJob};
use cyclecover_service::{daemon_stats_json, CertCache, CostModel, DaemonStats, Ingest, IngestAction};

const DOC: &str = include_str!("../../../docs/wire-format.md");

/// Extracts the contents of every ```json fence in the document.
fn json_blocks(doc: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        match (&mut current, line.trim_end()) {
            (None, "```json") => current = Some(String::new()),
            (Some(block), "```") => {
                blocks.push(std::mem::take(block));
                current = None;
            }
            (Some(block), text) => {
                block.push_str(text);
                block.push('\n');
            }
            (None, _) => {}
        }
    }
    assert!(current.is_none(), "unterminated ```json fence");
    blocks
}

fn blocks_of(format: &str) -> Vec<String> {
    json_blocks(DOC)
        .into_iter()
        .filter(|b| {
            Json::parse(b)
                .ok()
                .and_then(|d| d.get("format").and_then(Json::as_str).map(str::to_string))
                .as_deref()
                == Some(format)
        })
        .collect()
}

#[test]
fn daemon_stats_examples_round_trip() {
    let blocks = blocks_of("cyclecover-daemon-stats");
    assert!(!blocks.is_empty(), "no daemon-stats example in the doc");
    for block in blocks {
        let stats = DaemonStats::from_json(&block)
            .unwrap_or_else(|e| panic!("stats example rejected: {e}\n{block}"));
        let emitted = daemon_stats_json(&stats);
        assert!(
            !emitted.contains('\n'),
            "stats documents are single-line on the wire"
        );
        let back = DaemonStats::from_json(&emitted).expect("emitted stats parse");
        assert_eq!(back, stats, "round trip drifted for:\n{block}");
    }
}

#[test]
fn calibration_examples_round_trip() {
    let blocks = blocks_of("cyclecover-calibration");
    assert!(!blocks.is_empty(), "no calibration example in the doc");
    for block in blocks {
        let model = CostModel::from_json(&block)
            .unwrap_or_else(|e| panic!("calibration example rejected: {e}\n{block}"));
        assert!(!model.rows().is_empty());
        let back = CostModel::from_json(&model.to_json()).expect("emitted calibration parse");
        assert_eq!(back.rows(), model.rows(), "round trip drifted for:\n{block}");
    }
}

#[test]
fn certificate_cache_examples_load_with_every_entry_accepted() {
    let blocks = blocks_of("cyclecover-certificate-cache");
    assert!(!blocks.is_empty(), "no certificate-cache example in the doc");
    for block in blocks {
        let cache = CertCache::from_json(&block)
            .unwrap_or_else(|e| panic!("cache example rejected: {e}\n{block}"));
        // The documented example must survive the load-time
        // re-validation in full: no entry silently dropped.
        assert_eq!(
            cache.rejected_on_load(),
            0,
            "a documented cache entry failed re-validation:\n{block}"
        );
        assert!(!cache.is_empty(), "cache example carries no entries");
        let emitted = cache.to_json();
        assert!(
            !emitted.trim_end().contains('\n'),
            "cache documents are one line (plus a trailing newline in the file)"
        );
        let back = CertCache::from_json(&emitted).expect("emitted cache parse");
        assert_eq!(back.len(), cache.len(), "round trip drifted for:\n{block}");
        assert_eq!(back.rejected_on_load(), 0);
    }
}

#[test]
fn control_examples_classify_through_admission() {
    let blocks = blocks_of("cyclecover-control");
    let ingest = Ingest::new(None, 8);
    let (mut stats, mut shutdown) = (0usize, 0usize);
    for block in &blocks {
        match ingest.admit(block, 0) {
            IngestAction::Stats => stats += 1,
            IngestAction::Shutdown => shutdown += 1,
            other => panic!("control example misclassified as {other:?}:\n{block}"),
        }
    }
    assert!(stats >= 1, "the documented stats control went missing");
    assert!(shutdown >= 1, "the documented shutdown control went missing");
}

#[test]
fn documented_predictive_reject_agrees_with_the_committed_table() {
    let blocks = blocks_of("cyclecover-reject");
    let predictive: Vec<&String> = blocks
        .iter()
        .filter(|b| b.contains("predicted_unmeetable"))
        .collect();
    assert!(!predictive.is_empty(), "no predictive reject example");
    for block in predictive {
        let doc = Json::parse(block).expect("example parses");
        let nodes = doc
            .get("predicted_nodes")
            .and_then(Json::as_num)
            .expect("evidence nodes") as u64;
        // The example narrates the doomed n=10 certification against a
        // 1 ms deadline; the committed table must actually refuse that
        // job and predict the same node count the doc claims.
        let mut job = SolveJob::new("doomed", 10);
        job.deadline_ms = Some(1);
        let prediction = CostModel::builtin()
            .unmeetable(&job, 1)
            .expect("the documented doomed job is refused by the committed table");
        assert!(prediction.exact, "rejection must come from an exact point");
        assert_eq!(
            prediction.nodes, nodes,
            "doc example's predicted_nodes drifted from the committed table"
        );
    }
}

#[test]
fn request_examples_pass_predictive_admission() {
    // Honesty at the documentation level: every request example in the
    // wire doc is admitted (Submit) by the real admission layer with the
    // committed model installed — none trips a predictive refusal.
    let blocks = blocks_of("cyclecover-request");
    assert!(blocks.len() >= 3, "documented request examples went missing");
    let ingest = Ingest::new(Some(CostModel::builtin().clone()), 64);
    for block in &blocks {
        match ingest.admit(block, 0) {
            IngestAction::Submit(..) => {}
            other => panic!("request example not admitted ({other:?}):\n{block}"),
        }
    }
}
