//! # cyclecover-cli
//!
//! The `cyclecover` command-line tool: construct, validate, audit,
//! render, and tabulate DRC cycle coverings from a shell. The command
//! surface is the library's operator-facing façade — everything it does
//! goes through the same public APIs the examples and experiments use.
//!
//! ```text
//! cyclecover solve <n> [flags]    run a solver engine, emit a certificate
//! cyclecover serve --batch <jobs.jsonl>  run a batch through the solve service
//! cyclecover engines              list the registered solver engines
//! cyclecover rho <n>              minimum covering size ρ(n)
//! cyclecover construct <n>        emit the optimal covering (text format)
//! cyclecover validate <file>      re-validate a covering (text or JSON)
//! cyclecover audit <n>            run the full survivability audit on C_n
//! cyclecover svg <n>              render the covering of K_n as SVG
//! cyclecover compare <n>          protection vs restoration capacity
//! cyclecover table <odd|even> <max_n>   regenerate a theorem table
//! ```
//!
//! `solve` is the front door to the [`cyclecover_solver::api`]
//! request/engine surface: it builds a [`Problem`], a [`SolveRequest`]
//! from the flags, dispatches to the named engine, and prints either a
//! human summary or the JSON wire format (`--json`) that `validate`
//! accepts back.
//!
//! `serve` is the front door to the
//! [`cyclecover_service`] batch service: it reads one
//! `cyclecover-request` document per line (see `docs/wire-format.md`),
//! schedules them earliest-deadline-first over the engine registry with
//! the universe cache and request coalescing, prints the batch summary
//! JSON, and (with `--out`) writes each job's solution document where
//! `validate` can re-check it.
//!
//! The dispatch logic lives in [`run`] (pure: arguments in, output
//! string out) so the whole surface is unit-testable without spawning
//! processes; `main` is a 10-line shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cyclecover_core::{construct_with_status, rho, Optimality};
use cyclecover_io::{csv::Table, format, json, svg};
use cyclecover_net::{audit_all_failures, compare_schemes, WdmNetwork};
use cyclecover_service::{
    batch_summary_json_with_rejects, daemon_stats_json, CertCache, Daemon, DaemonConfig, FaultPlan,
    ServiceConfig, SolveService,
};
use cyclecover_solver::api::{
    engine_by_name, engines, LowerBoundProof, Optimality as SolveOptimality, Problem,
    SolveRequest, SymmetryMode,
};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::time::Duration;

/// Usage text.
pub const USAGE: &str = "\
cyclecover — survivable WDM ring design by DRC cycle covering
  (reproduction of Bermond, Coudert, Chacon & Tillerot, SPAA 2001)

USAGE:
  cyclecover solve <n> [--engine E] [--budget K] [--max-nodes N]
                       [--deadline MS] [--symmetry off|root|full]
                       [--lambda L] [--no-memo] [--memo-mb M] [--json]
                                     solve/certify the covering of K_n on C_n
                                     (default: find + certify the optimum;
                                      --budget K asks for any <= K covering;
                                      --symmetry sets the dihedral reduction
                                      of the exact search, default root;
                                      --lambda L asks for a λ-fold covering
                                      — every request covered L times, L=2
                                      is a cycle double cover — on the
                                      packed multiplicity kernel;
                                      --no-memo disables the residual-state
                                      dominance memo, --memo-mb caps its
                                      memory like the service universe cache)
  cyclecover serve --batch <jobs.jsonl | -> [--workers N] [--cache-mb M]
                       [--out DIR] [--retries R] [--backoff-ms B]
                       [--fault-plan plan.json] [--shared-memo]
                       [--cert-cache FILE]
                                     run a batch of request documents (one
                                     JSON per line; see docs/wire-format.md;
                                     `--batch -` reads the queue from stdin)
                                     through the batching solve service:
                                     EDF scheduling, universe cache, request
                                     coalescing, panic isolation, retry with
                                     backoff, and per-request fallback
                                     ladders (see docs/robustness.md).
                                     Malformed lines are reported per-line
                                     in the summary, not fatal. Prints the
                                     batch summary JSON; --out writes
                                     per-job solution documents that
                                     `validate` accepts; --fault-plan
                                     injects deterministic faults for chaos
                                     testing; --shared-memo shares one
                                     refutation store across a generation's
                                     workers and jobs; --cert-cache loads/
                                     saves a persistent certificate cache
                                     (repeat identical requests answer with
                                     zero search nodes, re-validated on
                                     load — never trusted blindly)
  cyclecover serve --listen <ip:port> [--workers N] [--cache-mb M]
                       [--max-conns C] [--queue-depth Q]
                       [--shared-memo] [--cert-cache FILE]
                                     run the always-on solve daemon: accept
                                     connections, stream newline-delimited
                                     request documents in and solution/
                                     reject documents out, with predictive
                                     admission (docs/wire-format.md has the
                                     framing rules and every document).
                                     Prints `listening on <addr>` once
                                     bound (port 0 picks a free port), and
                                     the final cyclecover-daemon-stats
                                     document after a graceful drain
  cyclecover client --connect <ip:port> [--jobs FILE|-] [--stats]
                       [--shutdown]  stream a jobs file (or stdin) to a
                                     running daemon and print each response
                                     line; --stats appends a stats control,
                                     --shutdown asks the daemon to drain
                                     gracefully and prints its final stats
  cyclecover engines [--json]        list the registered solver engines
                                     (--json: machine-readable listing with
                                     per-objective capability probes)
  cyclecover rho <n>                 print the optimal covering size ρ(n)
  cyclecover construct <n>           emit a minimum covering in text format
  cyclecover validate <file>         re-validate a covering file (text or
                                     solution JSON from `solve --json`)
  cyclecover audit <n>               exhaustive single-link failure audit on C_n
  cyclecover svg <n>                 render the covering of K_n over C_n as SVG
  cyclecover compare <n>             protection vs restoration capacity on C_n
  cyclecover loading <n>             ring loading baseline (min max link load)
  cyclecover avail <n>               availability gain of protection on C_n
  cyclecover table <odd|even> <max>  regenerate Theorem 1/2 rows up to n = max
";

/// Runs the `solve` subcommand: flags → [`SolveRequest`] → engine →
/// rendered [`cyclecover_solver::api::Solution`].
fn run_solve(args: &[String]) -> Result<String, String> {
    let n = parse_n(args.first())?;
    let mut engine_name = "bitset".to_string();
    let mut budget: Option<u32> = None;
    let mut max_nodes: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut symmetry: Option<SymmetryMode> = None;
    let mut lambda = 1u32;
    let mut memo = true;
    let mut memo_mb: Option<usize> = None;
    let mut as_json = false;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs {what}"))
        };
        match flag.as_str() {
            "--engine" => engine_name = value("an engine name")?,
            "--budget" => {
                budget = Some(
                    value("a tile budget")?
                        .parse()
                        .map_err(|e| format!("bad --budget: {e}"))?,
                )
            }
            "--max-nodes" => {
                max_nodes = Some(
                    value("a node count")?
                        .parse()
                        .map_err(|e| format!("bad --max-nodes: {e}"))?,
                )
            }
            "--deadline" => {
                deadline_ms = Some(
                    value("milliseconds")?
                        .parse()
                        .map_err(|e| format!("bad --deadline: {e}"))?,
                )
            }
            "--symmetry" => {
                symmetry = Some(match value("off|root|full")?.as_str() {
                    "off" => SymmetryMode::Off,
                    "root" => SymmetryMode::Root,
                    "full" => SymmetryMode::Full,
                    other => {
                        return Err(format!("bad --symmetry '{other}' (want off|root|full)"))
                    }
                })
            }
            "--lambda" => {
                lambda = value("a covering multiplicity")?
                    .parse()
                    .map_err(|e| format!("bad --lambda: {e}"))?;
                if lambda == 0 {
                    return Err("--lambda must be >= 1".into());
                }
            }
            "--no-memo" => memo = false,
            "--memo-mb" => {
                memo_mb = Some(
                    value("a size in MiB")?
                        .parse()
                        .map_err(|e| format!("bad --memo-mb: {e}"))?,
                )
            }
            "--json" => as_json = true,
            other => return Err(format!("unknown solve flag '{other}'")),
        }
    }
    let mut request = match budget {
        Some(k) => SolveRequest::within_budget(k),
        None => SolveRequest::find_optimal(),
    };
    if let Some(nodes) = max_nodes {
        request = request.with_max_nodes(nodes);
    }
    if let Some(ms) = deadline_ms {
        request = request.with_deadline(Duration::from_millis(ms));
    }
    if let Some(sym) = symmetry {
        request = request.with_symmetry(sym);
    }
    request = request.with_memo(memo);
    if let Some(mb) = memo_mb {
        request = request.with_memo_budget_bytes(mb << 20);
    }
    let engine = engine_by_name(&engine_name).ok_or_else(|| {
        let names: Vec<&str> = engines().iter().map(|e| e.name()).collect();
        format!("unknown engine '{engine_name}' (have: {})", names.join(", "))
    })?;
    let problem = if lambda > 1 {
        Problem::new(
            cyclecover_solver::TileUniverse::new(cyclecover_ring::Ring::new(n), n as usize),
            cyclecover_solver::bnb::CoverSpec::lambda_fold(n, lambda),
        )
    } else {
        Problem::complete(n)
    };
    if !engine.supports(&problem, &request) {
        return Err(format!(
            "engine '{engine_name}' does not support this problem/request"
        ));
    }
    let solution = engine.solve(&problem, &request);
    if as_json {
        return Ok(json::solution_to_json(&solution));
    }
    let mut out = String::new();
    if lambda > 1 {
        let _ = writeln!(out, "n = {n}, lambda = {lambda}, engine = {engine_name}");
    } else {
        let _ = writeln!(out, "n = {n}, engine = {engine_name}");
    }
    let rho_name = if lambda > 1 {
        format!("rho_{lambda}({n})")
    } else {
        format!("rho({n})")
    };
    match solution.optimality() {
        SolveOptimality::Optimal { lower_bound_proof } => {
            let _ = writeln!(
                out,
                "OPTIMAL: {} cycles ({rho_name} certified)",
                solution.size().expect("optimal solutions carry coverings")
            );
            match lower_bound_proof {
                LowerBoundProof::CombinatorialBound { bound } => {
                    let _ = writeln!(out, "lower bound: combinatorial bound = {bound}");
                }
                LowerBoundProof::ExhaustiveSearch {
                    infeasible_budget,
                    nodes,
                    symmetry_factor,
                } => {
                    let _ = writeln!(
                        out,
                        "lower bound: budget {infeasible_budget} proved infeasible \
                         ({nodes} nodes, symmetry x{symmetry_factor})"
                    );
                }
            }
        }
        SolveOptimality::Feasible => {
            let _ = writeln!(
                out,
                "FEASIBLE: {} cycles (optimality not established)",
                solution.size().expect("feasible solutions carry coverings")
            );
        }
        SolveOptimality::Infeasible => {
            let _ = writeln!(out, "INFEASIBLE: no covering within the requested budget");
        }
        SolveOptimality::BudgetExhausted { reason } => {
            let _ = writeln!(out, "INCONCLUSIVE: stopped by {reason:?}");
        }
        SolveOptimality::Failed { kind } => {
            let _ = writeln!(out, "FAILED: terminal {kind:?} failure");
        }
    }
    let st = solution.stats();
    let _ = writeln!(
        out,
        "stats: {} nodes, {} pruned, {} dominated, {} sym-pruned (x{}), \
         {} canon-pruned, memo {} hits / {} entries, {} budget(s), {:.1} ms",
        st.nodes,
        st.pruned,
        st.dominated,
        st.sym_pruned,
        st.sym_factor,
        st.canon_pruned,
        st.memo_hits,
        st.memo_entries,
        st.budgets_tried,
        st.wall.as_secs_f64() * 1e3
    );
    if st.partition_probes > 0 {
        let _ = writeln!(
            out,
            "route: partition kernel served {} of {} budget probe(s)",
            st.partition_probes, st.budgets_tried
        );
    }
    if let Some(tiles) = solution.covering() {
        for t in tiles {
            out.push_str("cycle");
            for v in t.vertices() {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
    }
    Ok(out)
}


/// Loads a persisted certificate cache for `serve --cert-cache`. A
/// missing file is an empty cache (first run creates it); an unreadable
/// or structurally-broken document is an error, but individually
/// tampered entries inside a well-formed document are dropped and
/// counted by the cache itself (see `docs/robustness.md`).
fn load_cert_cache(path: &str) -> Result<CertCache, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => CertCache::from_json(&text).map_err(|e| format!("{path}: {e}")),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(CertCache::new()),
        Err(e) => Err(format!("cannot read {path}: {e}")),
    }
}

/// Runs the `serve` subcommand in one of two modes: `--batch` pushes a
/// `.jsonl` file (or stdin, with `-`) through [`SolveService`] and
/// returns the batch summary JSON; `--listen` runs the always-on
/// [`Daemon`] until a client asks it to drain, then returns the final
/// daemon-stats document. The listen path prints the bound address
/// eagerly (before blocking) so scripts can scrape the port.
fn run_serve(args: &[String]) -> Result<String, String> {
    let mut batch: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut workers = 1usize;
    let mut cache_mb = 64usize;
    let mut max_conns: Option<usize> = None;
    let mut queue_depth: Option<usize> = None;
    let mut out_dir: Option<String> = None;
    let mut fault_plan: Option<String> = None;
    let mut retries: Option<u32> = None;
    let mut backoff_ms: Option<u64> = None;
    let mut shared_memo = false;
    let mut cert_cache_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs {what}"))
        };
        match flag.as_str() {
            "--batch" => batch = Some(value("a jobs file")?),
            "--listen" => listen = Some(value("an ip:port address")?),
            "--workers" => {
                workers = value("a thread count")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--cache-mb" => {
                cache_mb = value("a size in MiB")?
                    .parse()
                    .map_err(|e| format!("bad --cache-mb: {e}"))?;
            }
            "--max-conns" => {
                max_conns = Some(
                    value("a connection limit")?
                        .parse()
                        .map_err(|e| format!("bad --max-conns: {e}"))?,
                )
            }
            "--queue-depth" => {
                let depth: usize = value("a queue depth")?
                    .parse()
                    .map_err(|e| format!("bad --queue-depth: {e}"))?;
                if depth == 0 {
                    return Err("--queue-depth must be >= 1".into());
                }
                queue_depth = Some(depth);
            }
            "--out" => out_dir = Some(value("a directory")?),
            "--shared-memo" => shared_memo = true,
            "--cert-cache" => cert_cache_path = Some(value("a cache file")?),
            "--fault-plan" => fault_plan = Some(value("a fault-plan JSON file")?),
            "--retries" => {
                retries = Some(
                    value("a retry count")?
                        .parse()
                        .map_err(|e| format!("bad --retries: {e}"))?,
                )
            }
            "--backoff-ms" => {
                backoff_ms = Some(
                    value("milliseconds")?
                        .parse()
                        .map_err(|e| format!("bad --backoff-ms: {e}"))?,
                )
            }
            other => return Err(format!("unknown serve flag '{other}'")),
        }
    }
    if let Some(addr_spec) = listen {
        if batch.is_some() {
            return Err("--listen and --batch are separate modes; pick one".into());
        }
        for (set, flag) in [
            (out_dir.is_some(), "--out"),
            (fault_plan.is_some(), "--fault-plan"),
            (retries.is_some(), "--retries"),
            (backoff_ms.is_some(), "--backoff-ms"),
        ] {
            if set {
                return Err(format!("{flag} applies to --batch mode only"));
            }
        }
        let addr: std::net::SocketAddr = addr_spec
            .parse()
            .map_err(|e| format!("bad --listen address '{addr_spec}': {e}"))?;
        let mut config = DaemonConfig {
            workers,
            cache_bytes: cache_mb.saturating_mul(1 << 20),
            ..DaemonConfig::default()
        };
        if let Some(c) = max_conns {
            config.max_conns = c;
        }
        if let Some(q) = queue_depth {
            config.queue_depth = q;
        }
        let mut daemon =
            Daemon::bind(addr, config).map_err(|e| format!("cannot listen on {addr_spec}: {e}"))?;
        daemon.set_shared_memo(shared_memo);
        if let Some(path) = cert_cache_path {
            daemon.set_cert_cache(
                load_cert_cache(&path)?,
                Some(std::path::PathBuf::from(&path)),
            );
        }
        let bound = daemon.local_addr().map_err(|e| format!("local addr: {e}"))?;
        // Announce the port before blocking — `--listen 127.0.0.1:0`
        // binds an ephemeral port and scripts scrape this line.
        println!("listening on {bound}");
        let _ = std::io::stdout().flush();
        let stats = daemon.run();
        return Ok(format!("{}\n", daemon_stats_json(&stats)));
    }
    if max_conns.is_some() || queue_depth.is_some() {
        return Err("--max-conns/--queue-depth apply to --listen mode only".into());
    }
    let path = batch.ok_or("serve needs --batch <jobs.jsonl> or --listen <ip:port>")?;
    let text = if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        text
    } else {
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    let mut config = ServiceConfig {
        workers,
        cache_bytes: cache_mb.saturating_mul(1 << 20),
        shared_memo,
        ..ServiceConfig::default()
    };
    if let Some(r) = retries {
        config.max_attempts = r.saturating_add(1);
    }
    if let Some(ms) = backoff_ms {
        config.backoff_base_ms = ms;
    }
    let mut service = SolveService::new(config);
    if let Some(path) = &cert_cache_path {
        service.set_cert_cache(load_cert_cache(path)?);
    }
    if let Some(plan_path) = fault_plan {
        let plan_text = std::fs::read_to_string(&plan_path)
            .map_err(|e| format!("cannot read {plan_path}: {e}"))?;
        let plan = FaultPlan::from_json(&plan_text).map_err(|e| format!("{plan_path}: {e}"))?;
        service.set_fault_plan(plan);
    }
    // A malformed or unadmittable line rejects that line, not the batch:
    // rejects are reported per-line in the summary document.
    let mut rejects: Vec<(usize, String)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match json::request_from_json(line).and_then(|job| service.submit(job)) {
            Ok(_) => {}
            Err(e) => rejects.push((i + 1, e)),
        }
    }
    if service.queued() == 0 {
        let detail = rejects
            .first()
            .map(|(line, e)| format!(" (first reject at {path}:{line}: {e})"))
            .unwrap_or_default();
        return Err(format!("{path}: no request documents admitted{detail}"));
    }
    let report = service.drain();
    if let Some(path) = &cert_cache_path {
        if let Some(doc) = service.cert_cache_json() {
            std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        for job in &report.jobs {
            if let Some(sol) = &job.solution {
                let file = format!("{dir}/{}.json", job.id);
                std::fs::write(&file, json::solution_to_json(sol))
                    .map_err(|e| format!("cannot write {file}: {e}"))?;
            }
        }
    }
    Ok(batch_summary_json_with_rejects(&report, &rejects))
}

/// Runs the `client` subcommand: stream a jobs file (or stdin) to a
/// running daemon over TCP, optionally append `stats`/`shutdown`
/// control documents, half-close, and return every response line the
/// daemon sends back (the daemon closes the connection once every
/// streamed job has its terminal document).
fn run_client(args: &[String]) -> Result<String, String> {
    let mut connect: Option<String> = None;
    let mut jobs: Option<String> = None;
    let mut stats = false;
    let mut shutdown = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs {what}"))
        };
        match flag.as_str() {
            "--connect" => connect = Some(value("an ip:port address")?),
            "--jobs" => jobs = Some(value("a jobs file")?),
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            other => return Err(format!("unknown client flag '{other}'")),
        }
    }
    let addr = connect.ok_or("client needs --connect <ip:port>")?;
    let mut payload = String::new();
    if let Some(path) = jobs {
        let text = if path == "-" {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            text
        } else {
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?
        };
        payload.push_str(&text);
        if !payload.is_empty() && !payload.ends_with('\n') {
            payload.push('\n');
        }
    }
    if stats {
        payload.push_str("{\"format\": \"cyclecover-control\", \"version\": 1, \"op\": \"stats\"}\n");
    }
    if shutdown {
        payload
            .push_str("{\"format\": \"cyclecover-control\", \"version\": 1, \"op\": \"shutdown\"}\n");
    }
    if payload.is_empty() {
        return Err("client needs --jobs <file>, --stats, or --shutdown".into());
    }
    let mut stream = std::net::TcpStream::connect(&addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("socket: {e}"))?;
    stream
        .write_all(payload.as_bytes())
        .map_err(|e| format!("cannot send to {addr}: {e}"))?;
    // Half-close: tells the daemon this stream is complete, so it can
    // close the connection once the last answer is flushed.
    stream
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| format!("socket: {e}"))?;
    let mut out = String::new();
    stream
        .read_to_string(&mut out)
        .map_err(|e| format!("reading responses from {addr}: {e}"))?;
    Ok(out)
}

/// Renders the engine registry as the machine-readable
/// `cyclecover-engines` document: one entry per engine with
/// `supports()` probed for each objective on a representative problem.
fn engines_json() -> String {
    let problem = Problem::complete(8);
    let probes = [
        ("find_optimal", SolveRequest::find_optimal()),
        ("within_budget", SolveRequest::within_budget(9)),
        ("prove_infeasible", SolveRequest::prove_infeasible(8)),
    ];
    let mut out = String::new();
    out.push_str("{\n  \"format\": \"cyclecover-engines\",\n  \"version\": 1,\n  \"engines\": [\n");
    let all = engines();
    for (i, e) in all.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": {},", json::quote(e.name()));
        let _ = writeln!(out, "      \"description\": {},", json::quote(e.description()));
        let caps: Vec<String> = probes
            .iter()
            .map(|(name, req)| format!("\"{name}\": {}", e.supports(&problem, req)))
            .collect();
        let _ = writeln!(out, "      \"supports\": {{{}}}", caps.join(", "));
        let _ = writeln!(out, "    }}{}", if i + 1 < all.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Executes a command line (without the program name); returns the
/// output to print on success or an error message.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("solve") => run_solve(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("client") => run_client(&args[1..]),
        Some("engines") => match args.get(1).map(String::as_str) {
            Some("--json") => Ok(engines_json()),
            Some(other) => Err(format!("unknown engines flag '{other}' (only --json)")),
            None => {
                let mut out = String::new();
                for e in engines() {
                    let _ = writeln!(out, "{:16} {}", e.name(), e.description());
                }
                Ok(out)
            }
        },
        Some("rho") => {
            let n = parse_n(args.get(1))?;
            Ok(format!("{}\n", rho(n)))
        }
        Some("construct") => {
            let n = parse_n(args.get(1))?;
            let (cover, status) = construct_with_status(n);
            cover.validate().map_err(|e| format!("internal: {e}"))?;
            let mut out = format::to_text(&cover);
            if let Optimality::Excess(x) = status {
                let _ = writeln!(
                    out,
                    "# note: {x} cycle(s) above rho(n) = {} (documented n ≡ 0 mod 8 gap)",
                    rho(n)
                );
            }
            Ok(out)
        }
        Some("validate") => {
            let path = args.get(1).ok_or("validate needs a file path")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            // Solution JSON (from `solve --json`) or the v1 text format.
            let cover = if text.trim_start().starts_with('{') {
                json::covering_from_solution_json(&text)?
            } else {
                format::from_text(&text).map_err(|e| e.to_string())?
            };
            match cover.validate() {
                Ok(()) => Ok(format!(
                    "OK: {} cycles cover K_{} over C_{} (rho = {})\n",
                    cover.len(),
                    cover.ring().n(),
                    cover.ring().n(),
                    rho(cover.ring().n())
                )),
                Err(e) => Err(format!("INVALID: {e}")),
            }
        }
        Some("audit") => {
            let n = parse_n(args.get(1))?;
            let (cover, _) = construct_with_status(n);
            let net = WdmNetwork::from_covering(&cover);
            let audit = audit_all_failures(&net);
            let mut out = String::new();
            let _ = writeln!(out, "ring C_{n}: {} subnetworks, {} wavelengths", audit.subnets, 2 * audit.subnets);
            let _ = writeln!(out, "failures simulated: {n} (every link)");
            let _ = writeln!(out, "reroutes executed:  {}", audit.total_reroutes);
            let _ = writeln!(out, "fully survivable:   {}", audit.fully_survivable);
            let _ = writeln!(out, "max stretch:        {:.2}", audit.max_stretch);
            let _ = writeln!(out, "mean detour length: {:.2}", audit.mean_protection_len);
            if audit.fully_survivable {
                Ok(out)
            } else {
                Err(format!("{out}AUDIT FAILED"))
            }
        }
        Some("svg") => {
            let n = parse_n(args.get(1))?;
            let (cover, _) = construct_with_status(n);
            Ok(svg::render_covering(&cover, &svg::SvgOptions::default()))
        }
        Some("compare") => {
            let n = parse_n(args.get(1))?;
            let cmp = compare_schemes(n);
            let mut out = String::new();
            let _ = writeln!(out, "n = {n}");
            let _ = writeln!(out, "protection (2·rho(n)) wavelengths: {}", cmp.protection_wavelengths);
            let _ = writeln!(out, "working capacity (no failures):    {}", cmp.working_capacity);
            let _ = writeln!(out, "restoration capacity (any link):   {}", cmp.restoration_capacity);
            let _ = writeln!(out, "protection / restoration:          {:.2}", cmp.protection_over_restoration);
            Ok(out)
        }
        Some("loading") => {
            let n = parse_n(args.get(1))?;
            use cyclecover_ring::loading as rl;
            use cyclecover_ring::Ring;
            let ring = Ring::new(n);
            let demands = rl::all_to_all_demands(ring);
            let s = rl::shortest_loading(ring, &demands);
            let ls = rl::local_search_loading(ring, &demands);
            let mut out = String::new();
            let _ = writeln!(out, "C_{n}, all-to-all ({} demands)", demands.len());
            let _ = writeln!(out, "capacity lower bound: {}", rl::loading_lower_bound(ring, &demands));
            let _ = writeln!(out, "shortest-arc routing: {}", s.max_load);
            let _ = writeln!(out, "local search:         {}", ls.max_load);
            if n <= 10 {
                match rl::optimal_loading(ring, &demands, 100_000_000) {
                    Some(o) => {
                        let _ = writeln!(out, "exact optimum:        {}", o.max_load);
                    }
                    None => {
                        let _ = writeln!(out, "exact optimum:        (budget exhausted)");
                    }
                }
            }
            Ok(out)
        }
        Some("avail") => {
            let n = parse_n(args.get(1))?;
            use cyclecover_net::{availability_comparison, LinkModel};
            let (cover, _) = construct_with_status(n);
            let net = WdmNetwork::from_covering(&cover);
            let cmp = availability_comparison(&net, LinkModel::typical_fiber());
            let mut out = String::new();
            let _ = writeln!(out, "C_{n}, typical fiber (MTBF 4 months, MTTR 12 h)");
            let _ = writeln!(out, "per-link unavailability:   {:.3e}", cmp.link_unavailability);
            let _ = writeln!(
                out,
                "unprotected demand:        {:.3e} mean ({:.2} nines)",
                cmp.unprotected.mean_unavailability,
                cmp.unprotected.nines()
            );
            let _ = writeln!(
                out,
                "cycle-protected demand:    {:.3e} mean ({:.2} nines)",
                cmp.protected.mean_unavailability,
                cmp.protected.nines()
            );
            let _ = writeln!(out, "improvement:               {:.0}x", cmp.improvement);
            Ok(out)
        }
        Some("table") => {
            let kind = args.get(1).map(String::as_str);
            let max = parse_n(args.get(2))?;
            let mut t = Table::new(["n", "rho(n)", "constructed", "status"]);
            let range: Vec<u32> = match kind {
                Some("odd") => (3..=max).filter(|n| n % 2 == 1).collect(),
                Some("even") => (6..=max).filter(|n| n % 2 == 0).collect(),
                _ => return Err("table needs 'odd' or 'even' and a max n".into()),
            };
            for n in range {
                let (cover, status) = construct_with_status(n);
                cover.validate().map_err(|e| format!("n={n}: {e}"))?;
                t.push([
                    n.to_string(),
                    rho(n).to_string(),
                    cover.len().to_string(),
                    match status {
                        Optimality::Optimal => "optimal".to_string(),
                        Optimality::Excess(x) => format!("+{x}"),
                    },
                ]);
            }
            Ok(t.to_ascii())
        }
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn parse_n(arg: Option<&String>) -> Result<u32, String> {
    let s = arg.ok_or("missing <n> argument")?;
    let n: u32 = s.parse().map_err(|e| format!("bad n '{s}': {e}"))?;
    if n < 3 {
        return Err(format!("n must be >= 3, got {n}"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runv(args: &[&str]) -> Result<String, String> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn rho_command() {
        assert_eq!(runv(&["rho", "9"]).unwrap(), "10\n");
        assert_eq!(runv(&["rho", "13"]).unwrap(), "21\n");
    }

    #[test]
    fn solve_certifies_small_optimum() {
        let out = runv(&["solve", "6"]).unwrap();
        assert!(out.contains("OPTIMAL: 5 cycles"), "{out}");
        assert!(out.contains("lower bound"), "{out}");
        assert_eq!(out.matches("cycle ").count(), 5, "{out}");
    }

    #[test]
    fn solve_json_round_trips_through_validate() {
        let text = runv(&["solve", "6", "--json"]).unwrap();
        assert!(text.contains("\"cyclecover-solution\""), "{text}");
        let path = std::env::temp_dir().join("cyclecover_cli_test_solve6.json");
        std::fs::write(&path, &text).unwrap();
        let out = runv(&["validate", path.to_str().unwrap()]).unwrap();
        assert!(out.starts_with("OK: 5 cycles"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn solve_lambda_flag_certifies_double_cover_and_validates() {
        // ρ₂(6) = 9: the double cover sits exactly at the capacity bound
        // ⌈2·27/6⌉, so the optimum is certified by a combinatorial bound
        // and the human output names ρ₂ explicitly.
        let out = runv(&["solve", "6", "--lambda", "2"]).unwrap();
        assert!(out.contains("lambda = 2"), "{out}");
        assert!(out.contains("OPTIMAL: 9 cycles (rho_2(6) certified)"), "{out}");
        assert_eq!(out.matches("cycle ").count(), 9, "{out}");
        // The λ-fold solution document passes `cyclecover validate`
        // (every request covered ≥ 2 ≥ 1 times).
        let text = runv(&["solve", "6", "--lambda", "2", "--json"]).unwrap();
        let path = std::env::temp_dir().join("cyclecover_cli_test_lambda6.json");
        std::fs::write(&path, &text).unwrap();
        let ok = runv(&["validate", path.to_str().unwrap()]).unwrap();
        assert!(ok.starts_with("OK: 9 cycles"), "{ok}");
        std::fs::remove_file(&path).ok();
        // Flag validation.
        let err = runv(&["solve", "6", "--lambda", "0"]).unwrap_err();
        assert!(err.contains("--lambda must be >= 1"), "{err}");
        let err = runv(&["solve", "6", "--lambda", "many"]).unwrap_err();
        assert!(err.contains("bad --lambda"), "{err}");
    }

    #[test]
    fn solve_lambda_low_slack_probes_take_the_partition_route() {
        // ρ₂(8) = 16 sits exactly at the capacity bound (2·64/8), so the
        // first deepening probe has zero waste slack and the sequential
        // dispatch hands it to the partition kernel; the route is
        // visible provenance in both the human and JSON renderings.
        let out = runv(&["solve", "8", "--lambda", "2"]).unwrap();
        assert!(out.contains("OPTIMAL: 16 cycles (rho_2(8) certified)"), "{out}");
        assert!(out.contains("route: partition kernel served 1 of 1 budget probe(s)"), "{out}");
        let json = runv(&["solve", "8", "--lambda", "2", "--json"]).unwrap();
        assert!(json.contains("\"partition_probes\": 1"), "{json}");
        // A roomy budget keeps the λ-fold lane kernel in charge: no
        // probe reroutes, and the provenance says so.
        let out = runv(&["solve", "8", "--lambda", "2", "--budget", "20"]).unwrap();
        assert!(out.contains("FEASIBLE"), "{out}");
        assert!(!out.contains("route: partition"), "{out}");
        // The dedicated engines answer the same question explicitly.
        let out = runv(&["solve", "8", "--lambda", "2", "--engine", "partition"]).unwrap();
        assert!(out.contains("OPTIMAL: 16 cycles"), "{out}");
        let out = runv(&["solve", "8", "--lambda", "2", "--engine", "dlx"]).unwrap();
        assert!(out.contains("OPTIMAL: 16 cycles"), "{out}");
    }

    #[test]
    fn solve_budget_and_engines() {
        // An infeasible budget must say so.
        let out = runv(&["solve", "6", "--budget", "4"]).unwrap();
        assert!(out.contains("INFEASIBLE"), "{out}");
        // Heuristic engines answer FEASIBLE, never OPTIMAL.
        let out = runv(&["solve", "9", "--engine", "greedy-improve"]).unwrap();
        assert!(out.contains("FEASIBLE"), "{out}");
        // DLX partitions the odd case optimally.
        let out = runv(&["solve", "9", "--engine", "dlx"]).unwrap();
        assert!(out.contains("OPTIMAL: 10 cycles"), "{out}");
        // The registry listing names every engine.
        let listing = runv(&["engines"]).unwrap();
        for name in ["bitset", "bitset-parallel", "legacy", "dlx", "partition", "greedy", "anneal"] {
            assert!(listing.contains(name), "{listing}");
        }
    }

    #[test]
    fn solve_symmetry_flag() {
        // Default (root): the parity bound turns the budget-8 refutation
        // into a one-node proof, and the witness search reports the
        // order-4 dihedral root reduction in the stats line.
        let out = runv(&["solve", "8"]).unwrap();
        assert!(out.contains("budget 8 proved infeasible (1 nodes"), "{out}");
        assert!(out.contains("sym-pruned (x4)"), "{out}");
        // Off + --no-memo reproduces the historical exhaustive proof bit
        // for bit.
        let out = runv(&["solve", "8", "--symmetry", "off", "--no-memo"]).unwrap();
        assert!(
            out.contains("budget 8 proved infeasible (97465 nodes, symmetry x1)"),
            "{out}"
        );
        assert!(out.contains("sym-pruned (x1)"), "{out}");
        assert!(out.contains("memo 0 hits / 0 entries"), "{out}");
        let out = runv(&["solve", "8", "--symmetry", "full"]).unwrap();
        assert!(out.contains("OPTIMAL: 9 cycles"), "{out}");
        // The JSON wire format carries the factor in the stats block.
        let json = runv(&["solve", "8", "--json"]).unwrap();
        assert!(json.contains("\"symmetry_factor\": 4"), "{json}");
        assert!(json.contains("\"symmetry_factor\": 1"), "proof block: {json}");
        // Bad values are rejected helpfully.
        let err = runv(&["solve", "8", "--symmetry", "sideways"]).unwrap_err();
        assert!(err.contains("off|root|full"), "{err}");
    }

    #[test]
    fn solve_memo_flags() {
        // Memo on by default: the n = 8 off-mode refutation runs under
        // the historical 97,465 nodes and reports its hits, here with an
        // explicit 8 MiB table budget.
        let out = runv(&["solve", "8", "--symmetry", "off", "--memo-mb", "8"]).unwrap();
        assert!(out.contains("proved infeasible"), "{out}");
        assert!(!out.contains("(97465 nodes"), "memo never engaged: {out}");
        let json = runv(&["solve", "8", "--symmetry", "off", "--json"]).unwrap();
        assert!(json.contains("\"memo_hits\""), "{json}");
        assert!(json.contains("\"canon_pruned\""), "{json}");
        let err = runv(&["solve", "8", "--memo-mb", "lots"]).unwrap_err();
        assert!(err.contains("bad --memo-mb"), "{err}");
    }

    #[test]
    fn solve_max_nodes_reports_inconclusive() {
        // Symmetry off: under the default root mode the parity bound
        // finishes this refutation in one node, under any cap.
        let out = runv(&[
            "solve", "8", "--budget", "8", "--max-nodes", "10", "--symmetry", "off",
        ])
        .unwrap();
        assert!(out.contains("INCONCLUSIVE"), "{out}");
        assert!(out.contains("NodeBudget"), "{out}");
    }

    #[test]
    fn solve_flag_errors_are_helpful() {
        assert!(runv(&["solve"]).unwrap_err().contains("missing <n>"));
        assert!(runv(&["solve", "6", "--engine", "nope"])
            .unwrap_err()
            .contains("unknown engine"));
        assert!(runv(&["solve", "6", "--budget"])
            .unwrap_err()
            .contains("needs"));
        assert!(runv(&["solve", "6", "--frobnicate"])
            .unwrap_err()
            .contains("unknown solve flag"));
        // ProveInfeasible is unsupported by heuristics; --budget on greedy
        // that can't be met reports engine exhaustion instead of lying.
        let out = runv(&["solve", "9", "--engine", "greedy", "--budget", "1"]).unwrap();
        assert!(out.contains("INCONCLUSIVE"), "{out}");
    }

    #[test]
    fn serve_runs_a_mixed_batch_end_to_end() {
        // Three distinct universe keys, one repeat (coalesces + cache
        // hit), one unmeetable deadline: the ISSUE acceptance scenario.
        let jobs = r#"# mixed smoke queue
{"format": "cyclecover-request", "version": 1, "id": "k6-a", "n": 6}
{"format": "cyclecover-request", "version": 1, "id": "k6-b", "n": 6}

{"format": "cyclecover-request", "version": 1, "id": "k6-probe", "n": 6, "objective": {"kind": "within_budget", "budget": 6}}
{"format": "cyclecover-request", "version": 1, "id": "k7-dlx", "n": 7, "engine": "dlx"}
{"format": "cyclecover-request", "version": 1, "id": "k8", "n": 8, "objective": {"kind": "within_budget", "budget": 9}}
{"format": "cyclecover-request", "version": 1, "id": "late", "n": 9, "deadline_ms": 0}
"#;
        let dir = std::env::temp_dir().join("cyclecover_cli_test_serve");
        std::fs::create_dir_all(&dir).unwrap();
        let batch = dir.join("jobs.jsonl");
        std::fs::write(&batch, jobs).unwrap();
        let out = dir.join("out");
        let summary = runv(&[
            "serve",
            "--batch",
            batch.to_str().unwrap(),
            "--workers",
            "2",
            "--cache-mb",
            "16",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        assert!(summary.contains("\"cyclecover-batch-summary\""), "{summary}");
        assert!(summary.contains("\"expired\": 1"), "{summary}");
        assert!(summary.contains("\"coalesced\": 1"), "{summary}");
        assert!(
            summary.contains("\"reason\": \"deadline\""),
            "expired job must report budget_exhausted/deadline: {summary}"
        );
        // Cache hits > 0: the k6 repeat shares one universe.
        assert!(!summary.contains("\"hits\": 0"), "{summary}");
        // Every emitted solution with a covering round-trips through
        // `validate`.
        let mut validated = 0;
        for id in ["k6-a", "k6-b", "k6-probe", "k7-dlx", "k8"] {
            let file = out.join(format!("{id}.json"));
            let ok = runv(&["validate", file.to_str().unwrap()]).unwrap();
            assert!(ok.starts_with("OK:"), "{id}: {ok}");
            validated += 1;
        }
        assert_eq!(validated, 5);
        // The expired job's document exists and carries no covering.
        let late = std::fs::read_to_string(out.join("late.json")).unwrap();
        assert!(late.contains("\"budget_exhausted\""), "{late}");
        assert!(late.contains("\"cycles\": null"), "{late}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_admits_and_solves_lambda_fold_requests() {
        // A λ-fold request document runs the batch service end to end:
        // admitted (predictive admission has no unit-table point for it),
        // solved on the packed lane kernel, and the emitted solution
        // document passes `cyclecover validate`.
        let jobs = r#"{"format": "cyclecover-request", "version": 1, "id": "double-6", "n": 6, "lambda": 2}
{"format": "cyclecover-request", "version": 1, "id": "unit-6", "n": 6}
"#;
        let dir = std::env::temp_dir().join("cyclecover_cli_test_serve_lambda");
        std::fs::create_dir_all(&dir).unwrap();
        let batch = dir.join("jobs.jsonl");
        std::fs::write(&batch, jobs).unwrap();
        let out = dir.join("out");
        let summary = runv(&[
            "serve",
            "--batch",
            batch.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        assert!(summary.contains("\"solved\": 2"), "{summary}");
        assert!(summary.contains("\"predicted_rejected\": 0"), "{summary}");
        let double = std::fs::read_to_string(out.join("double-6.json")).unwrap();
        assert!(double.contains("\"optimal\""), "{double}");
        assert!(double.contains("\"size\": 9"), "ρ₂(6) = 9: {double}");
        let ok = runv(&["validate", out.join("double-6.json").to_str().unwrap()]).unwrap();
        assert!(ok.starts_with("OK: 9 cycles"), "{ok}");
        let ok = runv(&["validate", out.join("unit-6.json").to_str().unwrap()]).unwrap();
        assert!(ok.starts_with("OK: 5 cycles"), "{ok}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_reports_malformed_lines_without_aborting_the_batch() {
        // Two good jobs around two bad lines: the batch still runs, the
        // summary names each reject by line number, and the good jobs
        // solve normally.
        let jobs = r#"{"format": "cyclecover-request", "version": 1, "id": "good-1", "n": 6}
{"format": "cyclecover-request", "version": 1, "n": 2}
this line is not json at all
{"format": "cyclecover-request", "version": 1, "id": "good-2", "n": 7}
"#;
        let dir = std::env::temp_dir().join("cyclecover_cli_test_rejects");
        std::fs::create_dir_all(&dir).unwrap();
        let batch = dir.join("jobs.jsonl");
        std::fs::write(&batch, jobs).unwrap();
        let summary = runv(&["serve", "--batch", batch.to_str().unwrap()]).unwrap();
        assert!(summary.contains("\"rejected\": 2"), "{summary}");
        assert!(summary.contains("\"line\": 2"), "{summary}");
        assert!(summary.contains("\"line\": 3"), "{summary}");
        assert!(summary.contains("\"id\": \"good-1\""), "{summary}");
        assert!(summary.contains("\"id\": \"good-2\""), "{summary}");
        assert!(summary.contains("\"solved\": 2"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_fault_plan_panics_are_terminal_failed_answers() {
        // A plan that panics job "boom" on every dispatch: with retries
        // exhausted it must surface as a terminal failed status while the
        // other job still solves — the worker survives the panic.
        let jobs = r#"{"format": "cyclecover-request", "version": 1, "id": "boom", "n": 6}
{"format": "cyclecover-request", "version": 1, "id": "fine", "n": 7}
"#;
        let plan = r#"{"format": "cyclecover-fault-plan", "version": 1, "seed": 7,
                       "faults": [{"job": "boom", "kind": "panic"}]}"#;
        let dir = std::env::temp_dir().join("cyclecover_cli_test_faults");
        std::fs::create_dir_all(&dir).unwrap();
        let batch = dir.join("jobs.jsonl");
        let plan_path = dir.join("plan.json");
        std::fs::write(&batch, jobs).unwrap();
        std::fs::write(&plan_path, plan).unwrap();
        let summary = runv(&[
            "serve",
            "--batch",
            batch.to_str().unwrap(),
            "--fault-plan",
            plan_path.to_str().unwrap(),
            "--retries",
            "1",
            "--backoff-ms",
            "0",
        ])
        .unwrap();
        assert!(summary.contains("\"status\": \"failed\""), "{summary}");
        assert!(summary.contains("\"reason\": \"panic\""), "{summary}");
        assert!(summary.contains("\"failed\": 1"), "{summary}");
        assert!(summary.contains("\"solved\": 1"), "{summary}");
        assert!(summary.contains("\"faults_injected\": 2"), "{summary}");
        assert!(summary.contains("\"retries\": 1"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_listen_and_client_flag_errors_are_helpful() {
        assert!(runv(&["serve", "--listen", "nonsense"])
            .unwrap_err()
            .contains("bad --listen"));
        assert!(runv(&["serve", "--listen", "127.0.0.1:0", "--batch", "x"])
            .unwrap_err()
            .contains("separate modes"));
        assert!(runv(&["serve", "--batch", "x", "--queue-depth", "2"])
            .unwrap_err()
            .contains("--listen mode only"));
        assert!(runv(&["serve", "--listen", "127.0.0.1:0", "--retries", "1"])
            .unwrap_err()
            .contains("--batch mode only"));
        assert!(runv(&["serve", "--listen", "127.0.0.1:0", "--queue-depth", "0"])
            .unwrap_err()
            .contains(">= 1"));
        assert!(runv(&["client"]).unwrap_err().contains("--connect"));
        assert!(runv(&["client", "--connect", "127.0.0.1:1"])
            .unwrap_err()
            .contains("--jobs"));
        assert!(runv(&["client", "--frobnicate"])
            .unwrap_err()
            .contains("unknown client flag"));
    }

    #[test]
    fn client_streams_jobs_to_a_live_daemon_and_drains_it() {
        use cyclecover_service::{Daemon, DaemonConfig};
        let daemon =
            Daemon::bind("127.0.0.1:0".parse().unwrap(), DaemonConfig::default()).unwrap();
        let addr = daemon.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || daemon.run());

        let dir = std::env::temp_dir().join("cyclecover_cli_test_client");
        std::fs::create_dir_all(&dir).unwrap();
        let jobs = dir.join("jobs.jsonl");
        std::fs::write(
            &jobs,
            concat!(
                r#"{"format": "cyclecover-request", "version": 1, "id": "c6", "n": 6}"#,
                "\n",
                r#"{"format": "cyclecover-request", "version": 1, "id": "c7", "n": 7}"#,
                "\n",
            ),
        )
        .unwrap();
        let out = runv(&["client", "--connect", &addr, "--jobs", jobs.to_str().unwrap()])
            .unwrap();
        assert_eq!(out.lines().count(), 2, "{out}");
        for needle in ["\"id\": \"c6\"", "\"id\": \"c7\""] {
            assert!(out.contains(needle), "{out}");
        }
        assert!(out.contains("\"cyclecover-solution\""), "{out}");

        // Live stats + graceful drain on a second connection: one live
        // daemon-stats document, then the final one from the drain.
        let out = runv(&["client", "--connect", &addr, "--stats", "--shutdown"]).unwrap();
        assert_eq!(
            out.matches("\"cyclecover-daemon-stats\"").count(),
            2,
            "{out}"
        );
        let stats = server.join().unwrap();
        assert_eq!(stats.jobs_received, 2);
        assert_eq!(stats.jobs_answered, 2);
        assert_eq!(stats.unstarted, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engines_json_is_a_parseable_capability_listing() {
        let out = runv(&["engines", "--json"]).unwrap();
        let doc = cyclecover_io::json::Json::parse(&out).unwrap();
        assert_eq!(
            doc.get("format").and_then(cyclecover_io::json::Json::as_str),
            Some("cyclecover-engines")
        );
        let listed = doc
            .get("engines")
            .and_then(cyclecover_io::json::Json::as_arr)
            .unwrap();
        assert_eq!(listed.len(), engines().len());
        // The exact engine proves infeasibility; the heuristics honestly
        // decline to.
        assert!(out.contains("\"prove_infeasible\": true"), "{out}");
        assert!(out.contains("\"prove_infeasible\": false"), "{out}");
        assert!(runv(&["engines", "--frobnicate"])
            .unwrap_err()
            .contains("only --json"));
    }

    #[test]
    fn serve_flag_errors_are_helpful() {
        assert!(runv(&["serve"]).unwrap_err().contains("--batch"));
        assert!(runv(&["serve", "--workers", "2"])
            .unwrap_err()
            .contains("--batch"));
        assert!(runv(&["serve", "--frobnicate"])
            .unwrap_err()
            .contains("unknown serve flag"));
        let dir = std::env::temp_dir();
        let empty = dir.join("cyclecover_cli_test_empty.jsonl");
        std::fs::write(&empty, "# nothing here\n\n").unwrap();
        let err = runv(&["serve", "--batch", empty.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("no request documents"), "{err}");
        std::fs::remove_file(&empty).ok();
        let bad = dir.join("cyclecover_cli_test_bad.jsonl");
        std::fs::write(&bad, "{\"format\": \"cyclecover-request\", \"version\": 1, \"n\": 2}\n")
            .unwrap();
        let err = runv(&["serve", "--batch", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.contains(":1:"), "line number missing: {err}");
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn usage_covers_the_command_surface() {
        for needle in [
            "solve",
            "--symmetry",
            "--no-memo",
            "--memo-mb",
            "engines",
            "serve",
            "--batch",
            "--cache-mb",
            "--fault-plan",
            "--retries",
            "--backoff-ms",
            "--listen",
            "--max-conns",
            "--queue-depth",
            "client",
            "--connect",
            "--shutdown",
            "--stats",
            "--json",
        ] {
            assert!(USAGE.contains(needle), "USAGE missing {needle}");
        }
    }

    #[test]
    fn construct_emits_parseable_text() {
        let out = runv(&["construct", "11"]).unwrap();
        let cover = format::from_text(&out).unwrap();
        assert_eq!(cover.len() as u64, rho(11));
    }

    #[test]
    fn construct_marks_the_mod8_gap() {
        let out = runv(&["construct", "16"]).unwrap();
        assert!(out.contains("above rho(n)"), "gap note missing:\n{out}");
    }

    #[test]
    fn validate_round_trip_via_tempfile() {
        let text = runv(&["construct", "9"]).unwrap();
        let path = std::env::temp_dir().join("cyclecover_cli_test_k9.txt");
        std::fs::write(&path, &text).unwrap();
        let out = runv(&["validate", path.to_str().unwrap()]).unwrap();
        assert!(out.starts_with("OK: 10 cycles"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_rejects_garbage() {
        let path = std::env::temp_dir().join("cyclecover_cli_test_bad.txt");
        std::fs::write(&path, "ring 4\ncycle 0 2 3 1\n").unwrap();
        let err = runv(&["validate", path.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("DRC"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn audit_is_survivable() {
        let out = runv(&["audit", "10"]).unwrap();
        assert!(out.contains("fully survivable:   true"), "{out}");
    }

    #[test]
    fn svg_output() {
        let out = runv(&["svg", "7"]).unwrap();
        assert!(out.starts_with("<svg"));
    }

    #[test]
    fn compare_output_sane() {
        let out = runv(&["compare", "12"]).unwrap();
        assert!(out.contains("protection / restoration"));
    }

    #[test]
    fn table_odd() {
        let out = runv(&["table", "odd", "11"]).unwrap();
        assert!(out.contains("rho(n)"));
        // rows for 3,5,7,9,11 + header + rule
        assert_eq!(out.lines().count(), 7, "{out}");
    }

    #[test]
    fn loading_command() {
        let out = runv(&["loading", "8"]).unwrap();
        assert!(out.contains("shortest-arc routing: 10"), "{out}");
        assert!(out.contains("exact optimum:        9"), "{out}");
    }

    #[test]
    fn avail_command() {
        let out = runv(&["avail", "10"]).unwrap();
        assert!(out.contains("improvement"), "{out}");
        assert!(out.contains("nines"), "{out}");
    }

    #[test]
    fn errors_are_helpful() {
        assert!(runv(&["rho"]).unwrap_err().contains("missing <n>"));
        assert!(runv(&["rho", "two"]).unwrap_err().contains("bad n"));
        assert!(runv(&["rho", "2"]).unwrap_err().contains(">= 3"));
        assert!(runv(&["frobnicate"]).unwrap_err().contains("unknown command"));
        assert!(runv(&["table", "weird", "9"]).unwrap_err().contains("odd"));
        assert!(runv(&[]).unwrap().contains("USAGE"));
        assert!(runv(&["help"]).unwrap().contains("USAGE"));
    }
}
