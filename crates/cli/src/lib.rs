//! # cyclecover-cli
//!
//! The `cyclecover` command-line tool: construct, validate, audit,
//! render, and tabulate DRC cycle coverings from a shell. The command
//! surface is the library's operator-facing façade — everything it does
//! goes through the same public APIs the examples and experiments use.
//!
//! ```text
//! cyclecover rho <n>             minimum covering size ρ(n)
//! cyclecover construct <n>       emit the optimal covering (text format)
//! cyclecover validate <file>     parse + re-validate a covering file
//! cyclecover audit <n>           run the full survivability audit on C_n
//! cyclecover svg <n>             render the covering of K_n as SVG
//! cyclecover compare <n>         protection vs restoration capacity
//! cyclecover table <odd|even> <max_n>   regenerate a theorem table
//! ```
//!
//! The dispatch logic lives in [`run`] (pure: arguments in, output
//! string out) so the whole surface is unit-testable without spawning
//! processes; `main` is a 10-line shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cyclecover_core::{construct_with_status, rho, Optimality};
use cyclecover_io::{csv::Table, format, svg};
use cyclecover_net::{audit_all_failures, compare_schemes, WdmNetwork};
use std::fmt::Write as _;

/// Usage text.
pub const USAGE: &str = "\
cyclecover — survivable WDM ring design by DRC cycle covering
  (reproduction of Bermond, Coudert, Chacon & Tillerot, SPAA 2001)

USAGE:
  cyclecover rho <n>                 print the optimal covering size ρ(n)
  cyclecover construct <n>           emit a minimum covering in text format
  cyclecover validate <file>         parse and re-validate a covering file
  cyclecover audit <n>               exhaustive single-link failure audit on C_n
  cyclecover svg <n>                 render the covering of K_n over C_n as SVG
  cyclecover compare <n>             protection vs restoration capacity on C_n
  cyclecover loading <n>             ring loading baseline (min max link load)
  cyclecover avail <n>               availability gain of protection on C_n
  cyclecover table <odd|even> <max>  regenerate Theorem 1/2 rows up to n = max
";

/// Executes a command line (without the program name); returns the
/// output to print on success or an error message.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("rho") => {
            let n = parse_n(args.get(1))?;
            Ok(format!("{}\n", rho(n)))
        }
        Some("construct") => {
            let n = parse_n(args.get(1))?;
            let (cover, status) = construct_with_status(n);
            cover.validate().map_err(|e| format!("internal: {e}"))?;
            let mut out = format::to_text(&cover);
            if let Optimality::Excess(x) = status {
                let _ = writeln!(
                    out,
                    "# note: {x} cycle(s) above rho(n) = {} (documented n ≡ 0 mod 8 gap)",
                    rho(n)
                );
            }
            Ok(out)
        }
        Some("validate") => {
            let path = args.get(1).ok_or("validate needs a file path")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let cover = format::from_text(&text).map_err(|e| e.to_string())?;
            match cover.validate() {
                Ok(()) => Ok(format!(
                    "OK: {} cycles cover K_{} over C_{} (rho = {})\n",
                    cover.len(),
                    cover.ring().n(),
                    cover.ring().n(),
                    rho(cover.ring().n())
                )),
                Err(e) => Err(format!("INVALID: {e}")),
            }
        }
        Some("audit") => {
            let n = parse_n(args.get(1))?;
            let (cover, _) = construct_with_status(n);
            let net = WdmNetwork::from_covering(&cover);
            let audit = audit_all_failures(&net);
            let mut out = String::new();
            let _ = writeln!(out, "ring C_{n}: {} subnetworks, {} wavelengths", audit.subnets, 2 * audit.subnets);
            let _ = writeln!(out, "failures simulated: {n} (every link)");
            let _ = writeln!(out, "reroutes executed:  {}", audit.total_reroutes);
            let _ = writeln!(out, "fully survivable:   {}", audit.fully_survivable);
            let _ = writeln!(out, "max stretch:        {:.2}", audit.max_stretch);
            let _ = writeln!(out, "mean detour length: {:.2}", audit.mean_protection_len);
            if audit.fully_survivable {
                Ok(out)
            } else {
                Err(format!("{out}AUDIT FAILED"))
            }
        }
        Some("svg") => {
            let n = parse_n(args.get(1))?;
            let (cover, _) = construct_with_status(n);
            Ok(svg::render_covering(&cover, &svg::SvgOptions::default()))
        }
        Some("compare") => {
            let n = parse_n(args.get(1))?;
            let cmp = compare_schemes(n);
            let mut out = String::new();
            let _ = writeln!(out, "n = {n}");
            let _ = writeln!(out, "protection (2·rho(n)) wavelengths: {}", cmp.protection_wavelengths);
            let _ = writeln!(out, "working capacity (no failures):    {}", cmp.working_capacity);
            let _ = writeln!(out, "restoration capacity (any link):   {}", cmp.restoration_capacity);
            let _ = writeln!(out, "protection / restoration:          {:.2}", cmp.protection_over_restoration);
            Ok(out)
        }
        Some("loading") => {
            let n = parse_n(args.get(1))?;
            use cyclecover_ring::loading as rl;
            use cyclecover_ring::Ring;
            let ring = Ring::new(n);
            let demands = rl::all_to_all_demands(ring);
            let s = rl::shortest_loading(ring, &demands);
            let ls = rl::local_search_loading(ring, &demands);
            let mut out = String::new();
            let _ = writeln!(out, "C_{n}, all-to-all ({} demands)", demands.len());
            let _ = writeln!(out, "capacity lower bound: {}", rl::loading_lower_bound(ring, &demands));
            let _ = writeln!(out, "shortest-arc routing: {}", s.max_load);
            let _ = writeln!(out, "local search:         {}", ls.max_load);
            if n <= 10 {
                match rl::optimal_loading(ring, &demands, 100_000_000) {
                    Some(o) => {
                        let _ = writeln!(out, "exact optimum:        {}", o.max_load);
                    }
                    None => {
                        let _ = writeln!(out, "exact optimum:        (budget exhausted)");
                    }
                }
            }
            Ok(out)
        }
        Some("avail") => {
            let n = parse_n(args.get(1))?;
            use cyclecover_net::{availability_comparison, LinkModel};
            let (cover, _) = construct_with_status(n);
            let net = WdmNetwork::from_covering(&cover);
            let cmp = availability_comparison(&net, LinkModel::typical_fiber());
            let mut out = String::new();
            let _ = writeln!(out, "C_{n}, typical fiber (MTBF 4 months, MTTR 12 h)");
            let _ = writeln!(out, "per-link unavailability:   {:.3e}", cmp.link_unavailability);
            let _ = writeln!(
                out,
                "unprotected demand:        {:.3e} mean ({:.2} nines)",
                cmp.unprotected.mean_unavailability,
                cmp.unprotected.nines()
            );
            let _ = writeln!(
                out,
                "cycle-protected demand:    {:.3e} mean ({:.2} nines)",
                cmp.protected.mean_unavailability,
                cmp.protected.nines()
            );
            let _ = writeln!(out, "improvement:               {:.0}x", cmp.improvement);
            Ok(out)
        }
        Some("table") => {
            let kind = args.get(1).map(String::as_str);
            let max = parse_n(args.get(2))?;
            let mut t = Table::new(["n", "rho(n)", "constructed", "status"]);
            let range: Vec<u32> = match kind {
                Some("odd") => (3..=max).filter(|n| n % 2 == 1).collect(),
                Some("even") => (6..=max).filter(|n| n % 2 == 0).collect(),
                _ => return Err("table needs 'odd' or 'even' and a max n".into()),
            };
            for n in range {
                let (cover, status) = construct_with_status(n);
                cover.validate().map_err(|e| format!("n={n}: {e}"))?;
                t.push([
                    n.to_string(),
                    rho(n).to_string(),
                    cover.len().to_string(),
                    match status {
                        Optimality::Optimal => "optimal".to_string(),
                        Optimality::Excess(x) => format!("+{x}"),
                    },
                ]);
            }
            Ok(t.to_ascii())
        }
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn parse_n(arg: Option<&String>) -> Result<u32, String> {
    let s = arg.ok_or("missing <n> argument")?;
    let n: u32 = s.parse().map_err(|e| format!("bad n '{s}': {e}"))?;
    if n < 3 {
        return Err(format!("n must be >= 3, got {n}"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runv(args: &[&str]) -> Result<String, String> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn rho_command() {
        assert_eq!(runv(&["rho", "9"]).unwrap(), "10\n");
        assert_eq!(runv(&["rho", "13"]).unwrap(), "21\n");
    }

    #[test]
    fn construct_emits_parseable_text() {
        let out = runv(&["construct", "11"]).unwrap();
        let cover = format::from_text(&out).unwrap();
        assert_eq!(cover.len() as u64, rho(11));
    }

    #[test]
    fn construct_marks_the_mod8_gap() {
        let out = runv(&["construct", "16"]).unwrap();
        assert!(out.contains("above rho(n)"), "gap note missing:\n{out}");
    }

    #[test]
    fn validate_round_trip_via_tempfile() {
        let text = runv(&["construct", "9"]).unwrap();
        let path = std::env::temp_dir().join("cyclecover_cli_test_k9.txt");
        std::fs::write(&path, &text).unwrap();
        let out = runv(&["validate", path.to_str().unwrap()]).unwrap();
        assert!(out.starts_with("OK: 10 cycles"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_rejects_garbage() {
        let path = std::env::temp_dir().join("cyclecover_cli_test_bad.txt");
        std::fs::write(&path, "ring 4\ncycle 0 2 3 1\n").unwrap();
        let err = runv(&["validate", path.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("DRC"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn audit_is_survivable() {
        let out = runv(&["audit", "10"]).unwrap();
        assert!(out.contains("fully survivable:   true"), "{out}");
    }

    #[test]
    fn svg_output() {
        let out = runv(&["svg", "7"]).unwrap();
        assert!(out.starts_with("<svg"));
    }

    #[test]
    fn compare_output_sane() {
        let out = runv(&["compare", "12"]).unwrap();
        assert!(out.contains("protection / restoration"));
    }

    #[test]
    fn table_odd() {
        let out = runv(&["table", "odd", "11"]).unwrap();
        assert!(out.contains("rho(n)"));
        // rows for 3,5,7,9,11 + header + rule
        assert_eq!(out.lines().count(), 7, "{out}");
    }

    #[test]
    fn loading_command() {
        let out = runv(&["loading", "8"]).unwrap();
        assert!(out.contains("shortest-arc routing: 10"), "{out}");
        assert!(out.contains("exact optimum:        9"), "{out}");
    }

    #[test]
    fn avail_command() {
        let out = runv(&["avail", "10"]).unwrap();
        assert!(out.contains("improvement"), "{out}");
        assert!(out.contains("nines"), "{out}");
    }

    #[test]
    fn errors_are_helpful() {
        assert!(runv(&["rho"]).unwrap_err().contains("missing <n>"));
        assert!(runv(&["rho", "two"]).unwrap_err().contains("bad n"));
        assert!(runv(&["rho", "2"]).unwrap_err().contains(">= 3"));
        assert!(runv(&["frobnicate"]).unwrap_err().contains("unknown command"));
        assert!(runv(&["table", "weird", "9"]).unwrap_err().contains("odd"));
        assert!(runv(&[]).unwrap().contains("USAGE"));
        assert!(runv(&["help"]).unwrap().contains("USAGE"));
    }
}
