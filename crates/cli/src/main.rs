//! `cyclecover` binary entry point — a thin shim over [`cyclecover_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cyclecover_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
