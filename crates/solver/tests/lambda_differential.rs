//! Differential property tests pinning the packed λ-fold lane kernel to
//! the legacy multiplicity reference through the engine boundary: engine
//! `bitset` (which dispatches demands in `2..=3` to the word-parallel
//! lane core) must agree with engine `legacy` (`budget_search_legacy`,
//! the seed-era recursive `Vec<u32>` kernel) on verdicts and optima for
//! arbitrary λ ≤ 3 specs — every symmetry mode, memo off — and turning
//! the memo on must never flip a verdict nor expand more nodes. This is
//! the same pinning discipline PR 5 used for the unit-demand core,
//! applied to the multiplicity fast path.

use cyclecover_graph::{Edge, EdgeMultiset};
use cyclecover_ring::{Ring, Tile};
use cyclecover_solver::api::{
    engine_by_name, Optimality, Problem, SolveRequest, SymmetryMode,
};
use cyclecover_solver::bnb::CoverSpec;
use cyclecover_solver::TileUniverse;
use proptest::prelude::*;

const MAX_NODES: u64 = 200_000_000;

/// Asserts the chosen tiles meet every request's multiplicity.
fn assert_meets_spec(n: u32, tiles: &[Tile], spec: &CoverSpec) {
    let ring = Ring::new(n);
    let mut cov = EdgeMultiset::new(n as usize);
    for t in tiles {
        for c in t.chords(ring) {
            cov.insert(c.to_edge());
        }
    }
    for (d, &need) in spec.demand.iter().enumerate() {
        let e = Edge::from_dense_index(d, n as usize);
        assert!(
            cov.count(e) >= need,
            "request {e} covered {} < demand {need}",
            cov.count(e)
        );
    }
}

/// A random multiplicity spec with demands in `0..=3` (and at least one
/// demand ≥ 2, so the lane core — not the unit bitset core — serves it).
fn sparse_spec(n: u32, picks: &[(u32, u32, u32)]) -> Option<CoverSpec> {
    let mut demand = vec![0u32; n as usize * (n as usize - 1) / 2];
    for &(a, b, mult) in picks {
        let (a, b) = (a % n, b % n);
        if a != b {
            let d = Edge::new(a, b).dense_index(n as usize);
            demand[d] = demand[d].max(1 + mult % 3);
        }
    }
    demand
        .iter()
        .any(|&d| d >= 2)
        .then_some(CoverSpec { demand })
}

/// Optimum through one engine by probing every budget from 0 upward —
/// bound-independent, exactly as the unit-demand differential suite
/// does it.
fn optimum_via(engine: &str, problem: &Problem) -> (u32, Vec<Tile>) {
    let engine = engine_by_name(engine).expect("registered engine");
    for budget in 0..=64u32 {
        let sol = engine.solve(
            problem,
            &SolveRequest::within_budget(budget).with_max_nodes(MAX_NODES),
        );
        match sol.optimality() {
            Optimality::Feasible => {
                let tiles = sol.covering().expect("feasible carries covering").to_vec();
                return (budget, tiles);
            }
            Optimality::Infeasible => continue,
            other => panic!("inconclusive at budget {budget}: {other:?}"),
        }
    }
    panic!("no covering within 64 tiles — universe too restricted?");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary λ ≤ 3 specs: the packed kernel and the legacy
    /// reference agree on the optimum; both witnesses meet the
    /// multiplicities; and at the decisive budgets the packed kernel's
    /// verdict matches legacy under every symmetry mode (legacy always
    /// runs `Off` — symmetry must not change *what* is provable).
    #[test]
    fn packed_matches_legacy_on_sparse_specs(
        n in 5u32..=8,
        picks in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..3), 1..10),
    ) {
        let spec = sparse_spec(n, &picks);
        prop_assume!(spec.is_some());
        let spec = spec.unwrap();
        let problem = Problem::new(TileUniverse::new(Ring::new(n), 4), spec.clone());
        let (fast_opt, fast_tiles) = optimum_via("bitset", &problem);
        // The legacy kernel keeps zero-coverage candidates, so its tree
        // is `candidates^budget` — deep optima make the reference
        // intractable, not wrong. Keep the sampled instances where the
        // reference can actually answer.
        prop_assume!(fast_opt <= 6);
        let (slow_opt, slow_tiles) = optimum_via("legacy", &problem);
        prop_assert_eq!(fast_opt, slow_opt, "optimum drift: n={}", n);
        assert_meets_spec(n, &fast_tiles, problem.spec());
        assert_meets_spec(n, &slow_tiles, problem.spec());

        let bitset = engine_by_name("bitset").unwrap();
        let legacy = engine_by_name("legacy").unwrap();
        for sym in [SymmetryMode::Off, SymmetryMode::Root, SymmetryMode::Full] {
            for budget in [fast_opt.saturating_sub(1), fast_opt] {
                let fast = bitset.solve(
                    &problem,
                    &SolveRequest::within_budget(budget)
                        .with_symmetry(sym)
                        .with_memo(false)
                        .with_max_nodes(MAX_NODES),
                );
                let slow = legacy.solve(
                    &problem,
                    &SolveRequest::within_budget(budget).with_max_nodes(MAX_NODES),
                );
                let fast_feasible = matches!(fast.optimality(), Optimality::Feasible);
                let slow_feasible = matches!(slow.optimality(), Optimality::Feasible);
                prop_assert_eq!(
                    fast_feasible, slow_feasible,
                    "verdict drift: n={} budget={} {:?}", n, budget, sym
                );
                if let Some(tiles) = fast.covering() {
                    assert_meets_spec(n, tiles, problem.spec());
                }
            }
        }
    }

    /// Memo soundness on the lane core: with the memo on, a λ-fold
    /// search may only get *faster* — same verdict, and never more
    /// nodes (lane keys are always raw, so the memo-on tree is a
    /// node-for-node subset of the memo-off tree).
    #[test]
    fn lambda_memo_never_flips_nor_expands(
        n in 5u32..=8,
        picks in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..3), 1..10),
        sym_kind in 0u8..3,
    ) {
        let spec = sparse_spec(n, &picks);
        prop_assume!(spec.is_some());
        let spec = spec.unwrap();
        let sym = match sym_kind {
            0 => SymmetryMode::Off,
            1 => SymmetryMode::Root,
            _ => SymmetryMode::Full,
        };
        let problem = Problem::new(TileUniverse::new(Ring::new(n), 4), spec);
        let (opt, _) = optimum_via("bitset", &problem);
        let engine = engine_by_name("bitset").unwrap();
        for budget in [opt.saturating_sub(1), opt] {
            let plain = engine.solve(
                &problem,
                &SolveRequest::within_budget(budget)
                    .with_symmetry(sym)
                    .with_memo(false)
                    .with_max_nodes(MAX_NODES),
            );
            let memoed = engine.solve(
                &problem,
                &SolveRequest::within_budget(budget)
                    .with_symmetry(sym)
                    .with_max_nodes(MAX_NODES),
            );
            prop_assert_eq!(
                matches!(plain.optimality(), Optimality::Feasible),
                matches!(memoed.optimality(), Optimality::Feasible),
                "memo flipped the verdict: n={} budget={} {:?}", n, budget, sym
            );
            prop_assert!(
                memoed.stats().nodes <= plain.stats().nodes,
                "memo expanded more nodes ({} > {}): n={} budget={} {:?}",
                memoed.stats().nodes, plain.stats().nodes, n, budget, sym
            );
            if let Some(tiles) = memoed.covering() {
                assert_meets_spec(n, tiles, problem.spec());
            }
        }
    }
}

/// The paper's own shape — full λ-fold specs — pinned deterministically:
/// packed and legacy optima agree on every small double/triple cover,
/// and the packed kernel needs strictly fewer nodes than legacy on the
/// ρ₂(6) certification (the tentpole's "faster, same answers" claim;
/// BENCH_9.json tracks the measured counts).
#[test]
fn full_lambda_rows_agree() {
    for (n, lambda, max_len) in [(5u32, 2u32, 5usize), (6, 2, 6), (5, 3, 5), (7, 2, 4)] {
        let problem = Problem::new(
            TileUniverse::new(Ring::new(n), max_len),
            CoverSpec::lambda_fold(n, lambda),
        );
        let (fast_opt, fast_tiles) = optimum_via("bitset", &problem);
        let (slow_opt, slow_tiles) = optimum_via("legacy", &problem);
        assert_eq!(fast_opt, slow_opt, "n={n} λ={lambda}");
        assert_meets_spec(n, &fast_tiles, problem.spec());
        assert_meets_spec(n, &slow_tiles, problem.spec());
    }
}

/// The acceptance-criteria rows: every small λ-fold optimum sits *at*
/// the capacity bound (measured: ρ₂(5) = 6, ρ₂(6) = 9, ρ₂(7) = 12,
/// ρ₃(5) = 9, ρ₃(6) = 14), so both kernels refute `opt − 1` at the
/// root in one node and the whole certification cost is the witness
/// search — where the packed kernel must be strictly cheaper than the
/// legacy reference. BENCH_9.json tracks the measured counts with CI
/// ceilings.
#[test]
fn packed_beats_legacy_on_double_cover_nodes() {
    let bitset = engine_by_name("bitset").unwrap();
    let legacy = engine_by_name("legacy").unwrap();
    // (n, λ, optimum): double- and triple-cover rows where the witness
    // search does real work on both kernels.
    for (n, lambda, opt) in [(6u32, 2u32, 9u32), (6, 3, 14), (7, 2, 12)] {
        let problem = Problem::new(
            TileUniverse::new(Ring::new(n), n as usize),
            CoverSpec::lambda_fold(n, lambda),
        );
        let below = bitset.solve(
            &problem,
            &SolveRequest::prove_infeasible(opt - 1)
                .with_symmetry(SymmetryMode::Full)
                .with_max_nodes(MAX_NODES),
        );
        assert!(
            matches!(below.optimality(), Optimality::Infeasible),
            "ρ_{lambda}({n}) sits at the capacity bound"
        );
        let fast = bitset.solve(
            &problem,
            &SolveRequest::within_budget(opt)
                .with_symmetry(SymmetryMode::Full)
                .with_max_nodes(MAX_NODES),
        );
        let slow = legacy.solve(
            &problem,
            &SolveRequest::within_budget(opt).with_max_nodes(MAX_NODES),
        );
        assert!(matches!(fast.optimality(), Optimality::Feasible));
        assert!(matches!(slow.optimality(), Optimality::Feasible));
        assert!(
            fast.stats().nodes < slow.stats().nodes,
            "n={n} λ={lambda}: packed {} nodes vs legacy {} nodes",
            fast.stats().nodes,
            slow.stats().nodes
        );
    }
}
