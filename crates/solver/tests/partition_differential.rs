//! Differential property tests pinning the slack-budgeted partition
//! kernel (`bnb::budget_search_partition`, the PR-10 exact-cover route)
//! to the branch-and-bound cores it must agree with: the iterative unit
//! bitset core and the word-parallel λ-fold lane core (both reached
//! through `bnb::budget_search_reference` / `bnb::budget_search_packed`,
//! which bypass the low-slack dispatch). On random specs with demands in
//! `0..=3`, probed at the capacity budget (waste slack in `[0, n)` — the
//! dispatch's own trigger zone) and one above it, the partition kernel
//! must reproduce verdicts and optima exactly, return witnesses meeting
//! every multiplicity, and stay sound under every symmetry mode × memo
//! combination — including a shared store reused across both kernels,
//! which exercises the width-2/width-3 memo aliasing guard in anger.

use cyclecover_graph::{Edge, EdgeMultiset};
use cyclecover_ring::Ring;
use cyclecover_solver::api::SymmetryMode;
use cyclecover_solver::bnb::{
    budget_search_packed, budget_search_partition, budget_search_reference, CoverSpec,
    MemoStore, Outcome,
};
use cyclecover_solver::TileUniverse;
use proptest::prelude::*;

const MAX_NODES: u64 = 200_000_000;

/// Asserts the chosen tile indices meet every request's multiplicity.
fn assert_meets_spec(u: &TileUniverse, tiles: &[u32], spec: &CoverSpec) {
    let ring = u.ring();
    let n = ring.n();
    let mut cov = EdgeMultiset::new(n as usize);
    for &i in tiles {
        for c in u.tile(i).chords(ring) {
            cov.insert(c.to_edge());
        }
    }
    for (d, &need) in spec.demand.iter().enumerate() {
        let e = Edge::from_dense_index(d, n as usize);
        assert!(
            cov.count(e) >= need,
            "request {e} covered {} < demand {need}",
            cov.count(e)
        );
    }
}

/// A random multiplicity spec with demands in `0..=3` and at least one
/// demand ≥ 1. Unlike the λ-differential generator this one keeps pure
/// unit specs too: the partition kernel serves demands `1..=3`
/// uniformly, so it must be pinned against *both* reference cores.
fn sparse_spec(n: u32, picks: &[(u32, u32, u32)]) -> Option<CoverSpec> {
    let mut demand = vec![0u32; n as usize * (n as usize - 1) / 2];
    for &(a, b, mult) in picks {
        let (a, b) = (a % n, b % n);
        if a != b {
            let d = Edge::new(a, b).dense_index(n as usize);
            demand[d] = demand[d].max(1 + mult % 3);
        }
    }
    demand.iter().any(|&d| d >= 1).then_some(CoverSpec { demand })
}

/// The budget at which the waste slack `budget·n − λ·Σd(e)` first lands
/// in `[0, n)` — the capacity bound, i.e. exactly the low-slack zone the
/// sequential dispatch reroutes to the partition kernel.
fn capacity_budget(u: &TileUniverse, spec: &CoverSpec) -> u32 {
    let n = u.ring().n() as u64;
    let wsum: u64 = (0..u.num_chords())
        .map(|d| spec.demand[d as usize] as u64 * u.dist_of_pri(u.pri_of_dense(d)) as u64)
        .sum();
    wsum.div_ceil(n) as u32
}

/// Reference verdict: the branch-and-bound core the spec would run on
/// with the partition dispatch out of the picture.
fn reference(u: &TileUniverse, spec: &CoverSpec, budget: u32) -> Outcome {
    if spec.max_demand() <= 1 {
        budget_search_reference(u, spec, budget, MAX_NODES, SymmetryMode::Off).0
    } else {
        budget_search_packed(u, spec, budget, MAX_NODES, SymmetryMode::Off, None).0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random demands `0..=3` at the capacity budget and one above:
    /// every symmetry mode × memo combination of the partition kernel
    /// agrees with the reference core's verdict, and every witness it
    /// returns meets the full multiplicity spec.
    #[test]
    fn partition_matches_the_bnb_cores_on_low_slack_specs(
        n in 5u32..=8,
        picks in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..3), 1..10),
    ) {
        let spec = sparse_spec(n, &picks);
        prop_assume!(spec.is_some());
        let spec = spec.unwrap();
        let u = TileUniverse::new(Ring::new(n), 4);
        let cap = capacity_budget(&u, &spec);
        for budget in [cap, cap + 1] {
            let want = match reference(&u, &spec, budget) {
                Outcome::Feasible(tiles) => {
                    assert_meets_spec(&u, &tiles, &spec);
                    true
                }
                Outcome::Infeasible => false,
                Outcome::NodeLimit => panic!("reference hit the node cap"),
            };
            for sym in [SymmetryMode::Off, SymmetryMode::Root, SymmetryMode::Full] {
                for memo in [false, true] {
                    let store = memo.then(|| MemoStore::new(&u, 1 << 20).unwrap());
                    let (got, stats) = budget_search_partition(
                        &u, &spec, budget, MAX_NODES, sym, store.as_ref(),
                    );
                    prop_assert_eq!(stats.partition_probes, 1);
                    match got {
                        Outcome::Feasible(tiles) => {
                            prop_assert!(
                                want,
                                "partition found a covering the core refuted: \
                                 n={} budget={} {:?} memo={}", n, budget, sym, memo
                            );
                            assert_meets_spec(&u, &tiles, &spec);
                        }
                        Outcome::Infeasible => prop_assert!(
                            !want,
                            "partition refuted a feasible budget: \
                             n={} budget={} {:?} memo={}", n, budget, sym, memo
                        ),
                        Outcome::NodeLimit => panic!("partition hit the node cap"),
                    }
                }
            }
        }
    }

    /// Optimum agreement: probing every budget upward from zero, the
    /// partition kernel's first feasible budget equals the reference
    /// core's — the kernel neither loses solutions (incomplete search)
    /// nor invents them (unsound waste accounting).
    #[test]
    fn partition_optimum_matches_the_reference(
        n in 5u32..=8,
        picks in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..3), 1..8),
        sym_kind in 0u8..3,
    ) {
        let spec = sparse_spec(n, &picks);
        prop_assume!(spec.is_some());
        let spec = spec.unwrap();
        let sym = match sym_kind {
            0 => SymmetryMode::Off,
            1 => SymmetryMode::Root,
            _ => SymmetryMode::Full,
        };
        let u = TileUniverse::new(Ring::new(n), 4);
        let store = MemoStore::new(&u, 1 << 20).unwrap();
        let mut part_opt = None;
        let mut ref_opt = None;
        for budget in capacity_budget(&u, &spec)..=64 {
            if part_opt.is_none() {
                if let (Outcome::Feasible(tiles), _) = budget_search_partition(
                    &u, &spec, budget, MAX_NODES, sym, Some(&store),
                ) {
                    assert_meets_spec(&u, &tiles, &spec);
                    part_opt = Some(budget);
                }
            }
            if ref_opt.is_none() && !matches!(reference(&u, &spec, budget), Outcome::Infeasible) {
                ref_opt = Some(budget);
            }
            if part_opt.is_some() && ref_opt.is_some() {
                break;
            }
        }
        prop_assert_eq!(part_opt, ref_opt, "optimum drift: n={} {:?}", n, sym);
    }

    /// Sharing one store across the lane core (width-2 entries, tile
    /// slack) and the partition kernel (width-3 entries, waste slack)
    /// must not corrupt either: verdicts match the memo-free runs on
    /// both kernels afterwards.
    #[test]
    fn shared_store_never_leaks_across_kernel_widths(
        n in 5u32..=7,
        picks in proptest::collection::vec((0u32..1000, 0u32..1000, 0u32..3), 1..8),
    ) {
        let spec = sparse_spec(n, &picks);
        prop_assume!(spec.as_ref().is_some_and(|s| s.max_demand() >= 2));
        let spec = spec.unwrap();
        let u = TileUniverse::new(Ring::new(n), 4);
        let cap = capacity_budget(&u, &spec);
        let store = MemoStore::new(&u, 1 << 20).unwrap();
        for budget in [cap, cap + 1] {
            let (lanes, _) = budget_search_packed(
                &u, &spec, budget, MAX_NODES, SymmetryMode::Off, Some(&store),
            );
            let (part, _) = budget_search_partition(
                &u, &spec, budget, MAX_NODES, SymmetryMode::Off, Some(&store),
            );
            let bare = reference(&u, &spec, budget);
            prop_assert_eq!(
                matches!(lanes, Outcome::Feasible(_)),
                matches!(&bare, Outcome::Feasible(_)),
                "shared store flipped the lane verdict: n={} budget={}", n, budget
            );
            prop_assert_eq!(
                matches!(part, Outcome::Feasible(_)),
                matches!(&bare, Outcome::Feasible(_)),
                "shared store flipped the partition verdict: n={} budget={}", n, budget
            );
        }
    }
}

/// The paper's λ-fold rows, deterministically: the partition kernel
/// reproduces every measured optimum (refutes `opt − 1`, witnesses
/// `opt`) on full double- and triple-cover specs, under `Full` symmetry
/// with the memo on — the exact configuration the benches measure.
#[test]
fn full_lambda_rows_agree_through_the_partition_kernel() {
    for (n, lambda, opt) in [(5u32, 2u32, 6u32), (6, 2, 9), (7, 2, 12), (5, 3, 9), (6, 3, 14)] {
        let u = TileUniverse::new(Ring::new(n), n as usize);
        let spec = CoverSpec::lambda_fold(n, lambda);
        let store = MemoStore::new(&u, 4 << 20).unwrap();
        let (below, _) = budget_search_partition(
            &u, &spec, opt - 1, MAX_NODES, SymmetryMode::Full, Some(&store),
        );
        assert_eq!(below, Outcome::Infeasible, "ρ_{lambda}({n}) > {}", opt - 1);
        let (at, _) = budget_search_partition(
            &u, &spec, opt, MAX_NODES, SymmetryMode::Full, Some(&store),
        );
        match at {
            Outcome::Feasible(tiles) => assert_meets_spec(&u, &tiles, &spec),
            other => panic!("ρ_{lambda}({n}) = {opt} witness missing: {other:?}"),
        }
    }
}
