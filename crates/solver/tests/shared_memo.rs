//! The shared refutation store's contract, at the engine boundary:
//! sharing a [`MemoStore`] across budgets, probes, and requests is a
//! pure accelerator. It must never flip a verdict, never expand more
//! nodes than a cold search, and its reuse must be *visible* — the
//! `shared_hits` counter is what CI gates on, so these tests pin it
//! above zero everywhere the design promises cross-searcher traffic.

use cyclecover_graph::{Edge, EdgeMultiset};
use cyclecover_ring::Ring;
use cyclecover_solver::api::{
    engine_by_name, Engine, Optimality, Problem, SolveRequest, SymmetryMode,
};
use cyclecover_solver::bnb::{MemoStore, DEFAULT_MEMO_BYTES};
use cyclecover_solver::lower_bound::rho_formula;
use proptest::prelude::*;
use std::sync::Arc;

/// Asserts `tiles` covers every request of `K_n` at least once (the
/// DRC-level checks are the kernel's own invariants; coverage is the
/// part a bad prune would break).
fn assert_covers_complete(n: u32, tiles: &[cyclecover_ring::Tile]) {
    let ring = Ring::new(n);
    let mut cov = EdgeMultiset::new(n as usize);
    for t in tiles {
        for c in t.chords(ring) {
            cov.insert(c.to_edge());
        }
    }
    for u in 0..n {
        for v in (u + 1)..n {
            assert!(cov.count(Edge::new(u, v)) >= 1, "request ({u},{v}) uncovered");
        }
    }
}

fn bitset() -> &'static dyn Engine {
    engine_by_name("bitset").expect("bitset engine registered")
}

fn shared_store(problem: &Problem) -> Arc<MemoStore> {
    Arc::new(MemoStore::new(problem.universe(), DEFAULT_MEMO_BYTES).expect("store fits"))
}

/// The ρ(10) certification is the heaviest default workload, and the
/// request-wide store is what pins it under the pre-sharing baseline
/// (252,472 nodes, BENCH_5): the whole request feeds one store instead
/// of one private table per probe. A second certification against that
/// same store then answers almost entirely from recorded refutations —
/// the cross-request ring of the same mechanism, visible as
/// `shared_hits`.
#[test]
fn rho_10_certification_beats_the_private_memo_baseline_and_warms_the_store() {
    let problem = Problem::complete(10);
    let store = shared_store(&problem);
    let cold = bitset().solve(
        &problem,
        &SolveRequest::find_optimal().with_memo_store(Arc::clone(&store)),
    );
    assert!(
        matches!(cold.optimality(), Optimality::Optimal { .. }),
        "ρ(10) must certify: {:?}",
        cold.optimality()
    );
    assert_eq!(cold.size(), Some(13));
    assert!(
        cold.stats().nodes < 252_472,
        "the request-wide store must beat the per-probe-private baseline \
         (got {} nodes)",
        cold.stats().nodes
    );
    let warm = bitset().solve(
        &problem,
        &SolveRequest::find_optimal().with_memo_store(Arc::clone(&store)),
    );
    assert_eq!(warm.size(), Some(13));
    assert!(
        warm.stats().shared_hits > 0,
        "the warm certification must answer from the first one's refutations"
    );
    assert!(
        warm.stats().nodes * 100 < cold.stats().nodes,
        "warm ρ(10) should be orders of magnitude cheaper: {} vs {}",
        warm.stats().nodes,
        cold.stats().nodes
    );
}

/// Cross-request reuse: a second identical certification against the
/// store the first one fed answers from recorded refutations — same
/// verdict, a small fraction of the work, and the reuse visible.
#[test]
fn warm_store_repeat_agrees_and_is_nearly_free() {
    let problem = Problem::complete(8);
    let store = shared_store(&problem);
    let request = SolveRequest::find_optimal()
        .with_symmetry(SymmetryMode::Off)
        .with_memo_store(Arc::clone(&store));
    let cold = bitset().solve(&problem, &request);
    let warm = bitset().solve(&problem, &request);
    // The verdicts must agree; the embedded proofs legitimately differ
    // (the warm refutation needs far fewer nodes, and says so).
    assert!(matches!(cold.optimality(), Optimality::Optimal { .. }));
    assert!(matches!(warm.optimality(), Optimality::Optimal { .. }));
    assert_eq!(cold.size(), warm.size());
    assert_eq!(warm.size(), Some(rho_formula(8) as usize));
    assert!(warm.stats().shared_hits > 0, "warm run must hit the store");
    assert!(
        warm.stats().nodes * 10 < cold.stats().nodes,
        "warm repeat should be at least 10x cheaper: {} vs {}",
        warm.stats().nodes,
        cold.stats().nodes
    );
}

/// Cross-budget reuse between *requests*: refutations recorded while
/// refuting ρ−1 accelerate a later full certification over the same
/// store, because the sweep's own ρ−1 probe finds them already there.
#[test]
fn refutation_at_one_budget_accelerates_the_full_certification() {
    let n = 8;
    let rho = rho_formula(n) as u32;
    let problem = Problem::complete(n);
    let store = shared_store(&problem);
    let refute = bitset().solve(
        &problem,
        &SolveRequest::within_budget(rho - 1)
            .with_symmetry(SymmetryMode::Off)
            .with_memo_store(Arc::clone(&store)),
    );
    assert!(matches!(refute.optimality(), Optimality::Infeasible));
    let cold = bitset().solve(
        &problem,
        &SolveRequest::find_optimal().with_symmetry(SymmetryMode::Off),
    );
    let warm = bitset().solve(
        &problem,
        &SolveRequest::find_optimal()
            .with_symmetry(SymmetryMode::Off)
            .with_memo_store(Arc::clone(&store)),
    );
    assert!(matches!(cold.optimality(), Optimality::Optimal { .. }));
    assert!(matches!(warm.optimality(), Optimality::Optimal { .. }));
    assert_eq!(cold.size(), warm.size());
    assert!(warm.stats().shared_hits > 0);
    assert!(
        warm.stats().nodes < cold.stats().nodes,
        "a warm ρ−1 refutation must shrink the sweep: {} vs {}",
        warm.stats().nodes,
        cold.stats().nodes
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The cross-budget soundness contract, differentially: populate a
    /// store at budget k = ρ−1 (the refutation frontier), reuse it at
    /// k−1, k, or k+1, and compare against a cold default search. The
    /// re-normalized entries may only *prune* — identical verdict,
    /// no more nodes than cold, and any witness still validates.
    #[test]
    fn cross_budget_sharing_never_flips_a_verdict(
        n in 4u32..=10,
        sym_kind in 0u8..3,
        delta_kind in 0u8..3,
    ) {
        let delta = delta_kind as i32 - 1;
        let sym = match sym_kind {
            0 => SymmetryMode::Off,
            1 => SymmetryMode::Root,
            _ => SymmetryMode::Full,
        };
        let rho = rho_formula(n) as u32;
        let k0 = rho - 1;
        let k1 = ((k0 as i32 + delta).max(1)) as u32;
        let problem = Problem::complete(n);
        let store = shared_store(&problem);
        let populate = bitset().solve(
            &problem,
            &SolveRequest::within_budget(k0)
                .with_symmetry(sym)
                .with_memo_store(Arc::clone(&store)),
        );
        prop_assert!(
            matches!(populate.optimality(), Optimality::Infeasible),
            "ρ−1 must refute at n={}: {:?}", n, populate.optimality()
        );
        let cold = bitset().solve(
            &problem,
            &SolveRequest::within_budget(k1).with_symmetry(sym),
        );
        let warm = bitset().solve(
            &problem,
            &SolveRequest::within_budget(k1)
                .with_symmetry(sym)
                .with_memo_store(Arc::clone(&store)),
        );
        prop_assert_eq!(
            std::mem::discriminant(cold.optimality()),
            std::mem::discriminant(warm.optimality()),
            "sharing flipped n={} k0={} k1={} {:?}: {:?} vs {:?}",
            n, k0, k1, sym, cold.optimality(), warm.optimality()
        );
        prop_assert!(
            warm.stats().nodes <= cold.stats().nodes,
            "sharing expanded MORE nodes at n={} k1={} {:?}: {} vs {}",
            n, k1, sym, warm.stats().nodes, cold.stats().nodes
        );
        if let Some(tiles) = warm.covering() {
            assert_covers_complete(n, tiles);
        }
    }
}
