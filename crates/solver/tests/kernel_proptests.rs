//! Differential property tests: the bitset coverage kernel must be
//! observationally identical to the legacy multiplicity (`Vec<u32>`)
//! kernel — same feasible/infeasible verdicts, same optimum — on every
//! instance shape the solver supports (`n ≤ 9`, complete and random
//! subset specs, full and restricted universes).

use cyclecover_graph::{Edge, EdgeMultiset};
use cyclecover_ring::Ring;
use cyclecover_solver::bnb::{
    self, cover_spec_within_budget, cover_spec_within_budget_legacy,
    cover_spec_within_budget_parallel, CoverSpec, Outcome,
};
use cyclecover_solver::TileUniverse;
use proptest::prelude::*;

const MAX_NODES: u64 = 200_000_000;

/// Asserts the chosen tiles satisfy the spec's demands.
fn assert_meets_spec(u: &TileUniverse, idx: &[u32], spec: &CoverSpec) {
    let ring = u.ring();
    let n = ring.n() as usize;
    let mut cov = EdgeMultiset::new(n);
    for &i in idx {
        for c in u.tile(i).chords(ring) {
            cov.insert(c.to_edge());
        }
    }
    for (d, &need) in spec.demand.iter().enumerate() {
        let e = Edge::from_dense_index(d, n);
        assert!(
            cov.count(e) >= need,
            "request {e} covered {} < demand {need}",
            cov.count(e)
        );
    }
}

/// Optimum by iterative deepening on a given search function, from budget 0
/// (spec bounds don't matter for agreement testing, only the verdicts).
fn optimum_with(
    u: &TileUniverse,
    spec: &CoverSpec,
    run: impl Fn(&TileUniverse, &CoverSpec, u32) -> Outcome,
) -> (u32, Vec<u32>) {
    for budget in 0..=64u32 {
        match run(u, spec, budget) {
            Outcome::Feasible(idx) => return (budget, idx),
            Outcome::Infeasible => continue,
            Outcome::NodeLimit => panic!("node limit hit during differential test"),
        }
    }
    panic!("no covering within 64 tiles — universe too restricted?");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Complete specs: identical optimum and identical verdicts one below
    /// it, across full (`max_len = n`) and C3/C4 universes.
    #[test]
    fn complete_spec_kernels_agree(n in 5u32..=9, full in any::<bool>()) {
        let ring = Ring::new(n);
        let max_len = if full { n as usize } else { 4 };
        let u = TileUniverse::new(ring, max_len);
        let spec = CoverSpec::complete(n);
        let (fast_opt, fast_idx) = optimum_with(&u, &spec, |u, s, b| {
            cover_spec_within_budget(u, s, b, MAX_NODES).0
        });
        let (slow_opt, slow_idx) = optimum_with(&u, &spec, |u, s, b| {
            cover_spec_within_budget_legacy(u, s, b, MAX_NODES).0
        });
        prop_assert_eq!(fast_opt, slow_opt, "n={} max_len={}", n, max_len);
        assert_meets_spec(&u, &fast_idx, &spec);
        assert_meets_spec(&u, &slow_idx, &spec);
    }

    /// Random subset specs: same optimum on both kernels, and the bitset
    /// witness actually covers the demanded requests.
    #[test]
    fn subset_spec_kernels_agree(
        n in 5u32..=9,
        picks in proptest::collection::vec((0u32..1000, 0u32..1000), 1..10),
    ) {
        let ring = Ring::new(n);
        let u = TileUniverse::new(ring, 4);
        let requests: Vec<Edge> = picks
            .iter()
            .filter_map(|&(a, b)| {
                let (a, b) = (a % n, b % n);
                (a != b).then(|| Edge::new(a, b))
            })
            .collect();
        prop_assume!(!requests.is_empty());
        let spec = CoverSpec::subset(n, &requests);
        let (fast_opt, fast_idx) = optimum_with(&u, &spec, |u, s, b| {
            cover_spec_within_budget(u, s, b, MAX_NODES).0
        });
        let (slow_opt, _) = optimum_with(&u, &spec, |u, s, b| {
            cover_spec_within_budget_legacy(u, s, b, MAX_NODES).0
        });
        prop_assert_eq!(fast_opt, slow_opt, "n={} requests={:?}", n, requests);
        assert_meets_spec(&u, &fast_idx, &spec);
        // And the parallel frontier search agrees at the decisive budgets.
        let (par_at, _) = cover_spec_within_budget_parallel(&u, &spec, fast_opt, MAX_NODES, 3);
        prop_assert!(matches!(par_at, Outcome::Feasible(_)), "parallel at opt");
        if fast_opt > 0 {
            let (par_below, _) =
                cover_spec_within_budget_parallel(&u, &spec, fast_opt - 1, MAX_NODES, 3);
            prop_assert_eq!(par_below, Outcome::Infeasible, "parallel below opt");
        }
    }

    /// λ-fold specs route through the multiplicity kernel and must produce
    /// coverings meeting every multiplicity (the dispatch seam itself).
    #[test]
    fn lambda_specs_still_solved(n in 5u32..=7, lambda in 2u32..=3) {
        let ring = Ring::new(n);
        let u = TileUniverse::new(ring, 4);
        let spec = CoverSpec::lambda_fold(n, lambda);
        prop_assert!(!spec.is_unit());
        let (tiles, opt, _) =
            bnb::solve_optimal_spec(&u, &spec, MAX_NODES).expect("solved");
        let idx: Vec<u32> = tiles
            .iter()
            .map(|t| u.index_of(t).expect("solver tiles come from the universe"))
            .collect();
        assert_meets_spec(&u, &idx, &spec);
        prop_assert!(opt as u64 >= spec.capacity_lower_bound(ring));
    }
}
