//! Differential property tests through the engine boundary: the bitset
//! coverage kernel (engine `bitset`) must be observationally identical to
//! the legacy multiplicity kernel (engine `legacy`) — same
//! feasible/infeasible verdicts, same optimum — on every instance shape
//! the solver supports (`n ≤ 9`, complete and random subset specs, full
//! and restricted universes), and the frontier-parallel policy must agree
//! with both at the decisive budgets.

use cyclecover_graph::{Edge, EdgeMultiset};
use cyclecover_ring::{Ring, Tile};
use cyclecover_solver::api::{
    engine_by_name, ExecPolicy, Optimality, Problem, SolveRequest, SymmetryMode,
};
use cyclecover_solver::bnb::{budget_search_reference, CoverSpec, Outcome};
use cyclecover_solver::TileUniverse;
use proptest::prelude::*;

const MAX_NODES: u64 = 200_000_000;

/// Asserts the chosen tiles satisfy the spec's demands.
fn assert_meets_spec(n: u32, tiles: &[Tile], spec: &CoverSpec) {
    let ring = Ring::new(n);
    let mut cov = EdgeMultiset::new(n as usize);
    for t in tiles {
        for c in t.chords(ring) {
            cov.insert(c.to_edge());
        }
    }
    for (d, &need) in spec.demand.iter().enumerate() {
        let e = Edge::from_dense_index(d, n as usize);
        assert!(
            cov.count(e) >= need,
            "request {e} covered {} < demand {need}",
            cov.count(e)
        );
    }
}

/// Optimum through one engine by probing every budget from 0 upward —
/// deliberately NOT `FindOptimal`, whose deepening starts at the lower
/// bound the engines share. Probing from 0 keeps this suite independent
/// of the bound: if the bound ever overshot the true optimum, these
/// probes would find the smaller covering `FindOptimal` misses.
fn optimum_via(engine: &str, problem: &Problem) -> (u32, Vec<Tile>) {
    let engine = engine_by_name(engine).expect("registered engine");
    for budget in 0..=64u32 {
        let sol = engine.solve(
            problem,
            &SolveRequest::within_budget(budget).with_max_nodes(MAX_NODES),
        );
        match sol.optimality() {
            Optimality::Feasible => {
                let tiles = sol.covering().expect("feasible carries covering").to_vec();
                return (budget, tiles);
            }
            Optimality::Infeasible => continue,
            other => panic!("inconclusive at budget {budget}: {other:?}"),
        }
    }
    panic!("no covering within 64 tiles — universe too restricted?");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Complete specs: identical optimum and valid witnesses on both
    /// kernels, across full (`max_len = n`) and C3/C4 universes.
    #[test]
    fn complete_spec_kernels_agree(n in 5u32..=9, full in any::<bool>()) {
        let ring = Ring::new(n);
        let max_len = if full { n as usize } else { 4 };
        let make = || Problem::new(TileUniverse::new(ring, max_len), CoverSpec::complete(n));
        let problem = make();
        let (fast_opt, fast_tiles) = optimum_via("bitset", &problem);
        let (slow_opt, slow_tiles) = optimum_via("legacy", &problem);
        prop_assert_eq!(fast_opt, slow_opt, "n={} max_len={}", n, max_len);
        assert_meets_spec(n, &fast_tiles, problem.spec());
        assert_meets_spec(n, &slow_tiles, problem.spec());
    }

    /// Random subset specs: same optimum on both kernels, the bitset
    /// witness covers the demanded requests, and the parallel policy
    /// agrees at the decisive budgets.
    #[test]
    fn subset_spec_kernels_agree(
        n in 5u32..=9,
        picks in proptest::collection::vec((0u32..1000, 0u32..1000), 1..10),
    ) {
        let ring = Ring::new(n);
        let requests: Vec<Edge> = picks
            .iter()
            .filter_map(|&(a, b)| {
                let (a, b) = (a % n, b % n);
                (a != b).then(|| Edge::new(a, b))
            })
            .collect();
        prop_assume!(!requests.is_empty());
        let spec = CoverSpec::subset(n, &requests);
        let problem = Problem::new(TileUniverse::new(ring, 4), spec);
        let (fast_opt, fast_tiles) = optimum_via("bitset", &problem);
        let (slow_opt, _) = optimum_via("legacy", &problem);
        prop_assert_eq!(fast_opt, slow_opt, "n={} requests={:?}", n, requests);
        assert_meets_spec(n, &fast_tiles, problem.spec());
        // And the parallel frontier policy agrees at the decisive budgets.
        let parallel = ExecPolicy::Parallel { threads: 3, prefix_depth: 3 };
        let engine = engine_by_name("bitset").unwrap();
        let at = engine.solve(
            &problem,
            &SolveRequest::within_budget(fast_opt)
                .with_max_nodes(MAX_NODES)
                .with_policy(parallel),
        );
        prop_assert!(
            matches!(at.optimality(), Optimality::Feasible),
            "parallel at opt: {:?}", at.optimality()
        );
        if fast_opt > 0 {
            let below = engine.solve(
                &problem,
                &SolveRequest::prove_infeasible(fast_opt - 1)
                    .with_max_nodes(MAX_NODES)
                    .with_policy(parallel),
            );
            prop_assert!(
                matches!(below.optimality(), Optimality::Infeasible),
                "parallel below opt: {:?}", below.optimality()
            );
        }
    }

    /// The iterative core (engine path, memo off) must agree with the
    /// PR-3 recursive reference **to the node** on random subset specs,
    /// for every symmetry mode, at the decisive budgets — verdicts,
    /// optima, and exact node counts. This is the differential gate that
    /// keeps the allocation-free rewrite honest.
    #[test]
    fn iterative_core_matches_recursive_reference(
        n in 5u32..=10,
        picks in proptest::collection::vec((0u32..1000, 0u32..1000), 1..12),
    ) {
        let ring = Ring::new(n);
        let requests: Vec<Edge> = picks
            .iter()
            .filter_map(|&(a, b)| {
                let (a, b) = (a % n, b % n);
                (a != b).then(|| Edge::new(a, b))
            })
            .collect();
        prop_assume!(!requests.is_empty());
        let spec = CoverSpec::subset(n, &requests);
        let problem = Problem::new(TileUniverse::new(ring, 4), spec.clone());
        let (opt, _) = optimum_via("bitset", &problem);
        let engine = engine_by_name("bitset").unwrap();
        for sym in [SymmetryMode::Off, SymmetryMode::Root, SymmetryMode::Full] {
            for budget in [opt.saturating_sub(1), opt, opt + 1] {
                let (ref_outcome, ref_stats) = budget_search_reference(
                    problem.universe(), &spec, budget, u64::MAX, sym,
                );
                let sol = engine.solve(
                    &problem,
                    &SolveRequest::within_budget(budget)
                        .with_symmetry(sym)
                        .with_memo(false)
                        .with_max_nodes(MAX_NODES),
                );
                let ref_feasible = matches!(ref_outcome, Outcome::Feasible(_));
                let iter_feasible = matches!(sol.optimality(), Optimality::Feasible);
                prop_assert_eq!(
                    ref_feasible, iter_feasible,
                    "verdict drift: n={} budget={} {:?}", n, budget, sym
                );
                prop_assert_eq!(
                    ref_stats.nodes, sol.stats().nodes,
                    "node-count drift: n={} budget={} {:?}", n, budget, sym
                );
                prop_assert_eq!(
                    ref_stats.dominated, sol.stats().dominated,
                    "dominance drift: n={} budget={} {:?}", n, budget, sym
                );
                prop_assert_eq!(
                    ref_stats.sym_pruned,
                    sol.stats().sym_pruned + sol.stats().canon_pruned,
                    "orbit-filter drift: n={} budget={} {:?}", n, budget, sym
                );
            }
        }
    }

    /// Memo soundness: with the memo on (and canonical keying under
    /// `Full`), a search may only get *faster* — it must never report
    /// `Infeasible` on a budget the memo-free search satisfies, and the
    /// optimum must match exactly.
    #[test]
    fn memo_never_flips_a_verdict(
        n in 5u32..=9,
        picks in proptest::collection::vec((0u32..1000, 0u32..1000), 1..12),
        sym_kind in 0u8..3,
    ) {
        let ring = Ring::new(n);
        let requests: Vec<Edge> = picks
            .iter()
            .filter_map(|&(a, b)| {
                let (a, b) = (a % n, b % n);
                (a != b).then(|| Edge::new(a, b))
            })
            .collect();
        prop_assume!(!requests.is_empty());
        let sym = match sym_kind {
            0 => SymmetryMode::Off,
            1 => SymmetryMode::Root,
            _ => SymmetryMode::Full,
        };
        let spec = CoverSpec::subset(n, &requests);
        let problem = Problem::new(TileUniverse::new(ring, n as usize), spec);
        let engine = engine_by_name("bitset").unwrap();
        let (opt, tiles) = optimum_via("bitset", &problem);
        assert_meets_spec(n, &tiles, problem.spec());
        for budget in [opt.saturating_sub(1), opt] {
            let plain = engine.solve(
                &problem,
                &SolveRequest::within_budget(budget)
                    .with_symmetry(sym)
                    .with_memo(false)
                    .with_max_nodes(MAX_NODES),
            );
            let memoed = engine.solve(
                &problem,
                &SolveRequest::within_budget(budget)
                    .with_symmetry(sym)
                    .with_max_nodes(MAX_NODES),
            );
            prop_assert_eq!(
                matches!(plain.optimality(), Optimality::Feasible),
                matches!(memoed.optimality(), Optimality::Feasible),
                "memo flipped n={} budget={} {:?}: {:?} vs {:?}",
                n, budget, sym, plain.optimality(), memoed.optimality()
            );
            prop_assert!(
                memoed.stats().nodes <= plain.stats().nodes,
                "memo expanded MORE nodes: n={} budget={} {:?}", n, budget, sym
            );
            if let Some(found) = memoed.covering() {
                assert_meets_spec(n, found, problem.spec());
            }
        }
    }

    /// λ-fold specs route through the multiplicity kernel and must produce
    /// coverings meeting every multiplicity (the dispatch seam itself).
    #[test]
    fn lambda_specs_still_solved(n in 5u32..=7, lambda in 2u32..=3) {
        let ring = Ring::new(n);
        let spec = CoverSpec::lambda_fold(n, lambda);
        prop_assert!(!spec.is_unit());
        let problem = Problem::new(TileUniverse::new(ring, 4), spec);
        let (opt, tiles) = optimum_via("bitset", &problem);
        assert_meets_spec(n, &tiles, problem.spec());
        prop_assert!(opt as u64 >= problem.spec().capacity_lower_bound(ring));
    }
}
