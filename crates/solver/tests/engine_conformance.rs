//! Engine conformance suite: every registered engine, on every small
//! instance it claims to support, must return coverings that validate,
//! agree with the other exact engines on the optimum, and reach the same
//! infeasibility verdicts — the contract the [`cyclecover_solver::api`]
//! boundary promises to callers regardless of which engine answers.

use cyclecover_graph::{Edge, EdgeMultiset};
use cyclecover_ring::Ring;
use cyclecover_solver::api::{
    engine_by_name, engines, CancelToken, ExecPolicy, Objective, Optimality, Problem,
    SolveRequest,
};
use cyclecover_solver::lower_bound::rho_formula;
use proptest::prelude::*;
use std::time::Duration;

const NS: std::ops::RangeInclusive<u32> = 4..=8;
const EXACT: [&str; 4] = ["bitset", "bitset-parallel", "legacy", "dlx"];

/// Asserts `tiles` covers every request of `K_n` at least once.
fn assert_covers_complete(n: u32, tiles: &[cyclecover_ring::Tile]) {
    let ring = Ring::new(n);
    let mut cov = EdgeMultiset::new(n as usize);
    for t in tiles {
        for c in t.chords(ring) {
            cov.insert(c.to_edge());
        }
    }
    for u in 0..n {
        for v in (u + 1)..n {
            assert!(cov.count(Edge::new(u, v)) >= 1, "request ({u},{v}) uncovered");
        }
    }
}

/// Every supporting engine returns a *valid* covering for `FindOptimal`,
/// and every exact engine lands exactly on `ρ(n)` with an `Optimal`
/// certificate (heuristics must be `Feasible` and no smaller than ρ).
#[test]
fn all_engines_return_valid_coverings_and_exact_engines_agree() {
    for n in NS {
        let problem = Problem::complete(n);
        let request = SolveRequest::find_optimal().with_max_nodes(200_000_000);
        let rho = rho_formula(n);
        for engine in engines() {
            if !engine.supports(&problem, &request) {
                continue;
            }
            let sol = engine.solve(&problem, &request);
            let name = engine.name();
            let tiles = sol
                .covering()
                .unwrap_or_else(|| panic!("{name} n={n}: no covering: {:?}", sol.optimality()));
            assert_covers_complete(n, tiles);
            if EXACT.contains(&name) {
                assert!(
                    matches!(sol.optimality(), Optimality::Optimal { .. }),
                    "{name} n={n}: {:?}",
                    sol.optimality()
                );
                assert_eq!(tiles.len() as u64, rho, "{name} n={n}");
            } else {
                assert_eq!(*sol.optimality(), Optimality::Feasible, "{name} n={n}");
                assert!(tiles.len() as u64 >= rho, "{name} n={n} beat rho?!");
            }
        }
    }
}

/// `ProveInfeasible(ρ(n) − 1)` verdicts match across the exact engines
/// (bitset, bitset-parallel, legacy, and DLX where it applies): all must
/// return `Infeasible`, and at `ρ(n)` all must refute with a witness.
#[test]
fn infeasibility_verdicts_match_across_exact_engines() {
    for n in NS {
        let problem = Problem::complete(n);
        let rho = rho_formula(n) as u32;
        for name in EXACT {
            let engine = engine_by_name(name).expect("registered engine");
            let below = SolveRequest::prove_infeasible(rho - 1).with_max_nodes(200_000_000);
            if !engine.supports(&problem, &below) {
                continue;
            }
            let sol = engine.solve(&problem, &below);
            assert_eq!(
                *sol.optimality(),
                Optimality::Infeasible,
                "{name} n={n} at rho-1"
            );
            let at = engine.solve(
                &problem,
                &SolveRequest::prove_infeasible(rho).with_max_nodes(200_000_000),
            );
            assert_eq!(*at.optimality(), Optimality::Feasible, "{name} n={n} at rho");
            assert_covers_complete(n, at.covering().expect("refutation witness"));
        }
    }
}

/// The DLX engine's declared scope: odd complete instances only.
#[test]
fn dlx_scope_is_odd_complete() {
    let dlx = engine_by_name("dlx").unwrap();
    let req = SolveRequest::find_optimal();
    assert!(dlx.supports(&Problem::complete(7), &req));
    assert!(!dlx.supports(&Problem::complete(8), &req), "even n");
    assert!(!dlx.supports(&Problem::lambda_fold(7, 2), &req), "λ-fold");
}

/// Heuristics refuse to "prove" anything.
#[test]
fn heuristics_do_not_claim_proofs() {
    for name in ["greedy", "greedy-improve", "anneal"] {
        let engine = engine_by_name(name).unwrap();
        let problem = Problem::complete(7);
        assert!(
            !engine.supports(&problem, &SolveRequest::prove_infeasible(5)),
            "{name} claims to prove infeasibility"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Request-builder round-trip: every combination of objective,
    /// limits, and policy reads back exactly as it was written.
    #[test]
    fn request_builder_round_trips(
        kind in 0u8..3,
        budget in 0u32..64,
        max_nodes in 1u64..=u64::MAX,
        deadline_on in any::<bool>(),
        deadline_raw in 0u64..100_000,
        threads in 0usize..16,
        prefix_depth in 0u32..8,
        policy_kind in 0u8..3,
    ) {
        let objective = match kind {
            0 => Objective::FindOptimal,
            1 => Objective::WithinBudget(budget),
            _ => Objective::ProveInfeasible(budget),
        };
        let policy = match policy_kind {
            0 => ExecPolicy::Sequential,
            1 => ExecPolicy::Parallel { threads, prefix_depth },
            _ => ExecPolicy::Auto,
        };
        let deadline_ms = deadline_on.then_some(deadline_raw);
        let token = CancelToken::new();
        let mut request = SolveRequest::new(objective)
            .with_max_nodes(max_nodes)
            .with_cancel_token(token.clone())
            .with_policy(policy);
        if let Some(ms) = deadline_ms {
            request = request.with_deadline(Duration::from_millis(ms));
        }
        prop_assert_eq!(request.objective(), objective);
        prop_assert_eq!(request.max_nodes(), max_nodes);
        prop_assert_eq!(request.deadline(), deadline_ms.map(Duration::from_millis));
        prop_assert_eq!(request.policy(), policy);
        // The token is shared, not copied: cancelling the caller's clone
        // must be visible through the request's handle.
        prop_assert!(!request.cancel_token().is_cancelled());
        token.cancel();
        prop_assert!(request.cancel_token().is_cancelled());
    }

    /// The convenience constructors agree with `new`.
    #[test]
    fn request_shorthands_match_new(budget in 0u32..64) {
        prop_assert_eq!(
            SolveRequest::find_optimal().objective(),
            Objective::FindOptimal
        );
        prop_assert_eq!(
            SolveRequest::within_budget(budget).objective(),
            Objective::WithinBudget(budget)
        );
        prop_assert_eq!(
            SolveRequest::prove_infeasible(budget).objective(),
            Objective::ProveInfeasible(budget)
        );
    }
}
