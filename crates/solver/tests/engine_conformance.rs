//! Engine conformance suite: every registered engine, on every small
//! instance it claims to support, must return coverings that validate,
//! agree with the other exact engines on the optimum, and reach the same
//! infeasibility verdicts — the contract the [`cyclecover_solver::api`]
//! boundary promises to callers regardless of which engine answers.

use cyclecover_graph::{Edge, EdgeMultiset};
use cyclecover_ring::{symmetry as ring_symmetry, Ring};
use cyclecover_solver::api::{
    engine_by_name, engines, CancelToken, ExecPolicy, Objective, Optimality, Problem,
    SolveRequest, SymmetryMode,
};
use cyclecover_solver::bnb::CoverSpec;
use cyclecover_solver::lower_bound::rho_formula;
use cyclecover_solver::TileUniverse;
use proptest::prelude::*;
use std::time::Duration;

const NS: std::ops::RangeInclusive<u32> = 4..=8;
const EXACT: [&str; 5] = ["bitset", "bitset-parallel", "legacy", "dlx", "partition"];

/// The multiset of edges `tiles` covers.
fn coverage_of(n: u32, tiles: &[cyclecover_ring::Tile]) -> EdgeMultiset {
    let ring = Ring::new(n);
    let mut cov = EdgeMultiset::new(n as usize);
    for t in tiles {
        for c in t.chords(ring) {
            cov.insert(c.to_edge());
        }
    }
    cov
}

/// Asserts `tiles` covers every request of `K_n` at least once.
fn assert_covers_complete(n: u32, tiles: &[cyclecover_ring::Tile]) {
    let cov = coverage_of(n, tiles);
    for u in 0..n {
        for v in (u + 1)..n {
            assert!(cov.count(Edge::new(u, v)) >= 1, "request ({u},{v}) uncovered");
        }
    }
}

/// Every supporting engine returns a *valid* covering for `FindOptimal`,
/// and every exact engine lands exactly on `ρ(n)` with an `Optimal`
/// certificate (heuristics must be `Feasible` and no smaller than ρ).
#[test]
fn all_engines_return_valid_coverings_and_exact_engines_agree() {
    for n in NS {
        let problem = Problem::complete(n);
        let request = SolveRequest::find_optimal().with_max_nodes(200_000_000);
        let rho = rho_formula(n);
        for engine in engines() {
            if !engine.supports(&problem, &request) {
                continue;
            }
            let sol = engine.solve(&problem, &request);
            let name = engine.name();
            let tiles = sol
                .covering()
                .unwrap_or_else(|| panic!("{name} n={n}: no covering: {:?}", sol.optimality()));
            assert_covers_complete(n, tiles);
            if EXACT.contains(&name) {
                assert!(
                    matches!(sol.optimality(), Optimality::Optimal { .. }),
                    "{name} n={n}: {:?}",
                    sol.optimality()
                );
                assert_eq!(tiles.len() as u64, rho, "{name} n={n}");
            } else {
                assert_eq!(*sol.optimality(), Optimality::Feasible, "{name} n={n}");
                assert!(tiles.len() as u64 >= rho, "{name} n={n} beat rho?!");
            }
        }
    }
}

/// `ProveInfeasible(ρ(n) − 1)` verdicts match across the exact engines
/// (bitset, bitset-parallel, legacy, and DLX where it applies): all must
/// return `Infeasible`, and at `ρ(n)` all must refute with a witness.
#[test]
fn infeasibility_verdicts_match_across_exact_engines() {
    for n in NS {
        let problem = Problem::complete(n);
        let rho = rho_formula(n) as u32;
        for name in EXACT {
            let engine = engine_by_name(name).expect("registered engine");
            let below = SolveRequest::prove_infeasible(rho - 1).with_max_nodes(200_000_000);
            if !engine.supports(&problem, &below) {
                continue;
            }
            let sol = engine.solve(&problem, &below);
            assert_eq!(
                *sol.optimality(),
                Optimality::Infeasible,
                "{name} n={n} at rho-1"
            );
            let at = engine.solve(
                &problem,
                &SolveRequest::prove_infeasible(rho).with_max_nodes(200_000_000),
            );
            assert_eq!(*at.optimality(), Optimality::Feasible, "{name} n={n} at rho");
            assert_covers_complete(n, at.covering().expect("refutation witness"));
        }
    }
}

/// λ-fold conformance: on every small double/triple cover, each engine
/// either solves it exactly or honestly declines. Every supporting
/// engine must land on the measured optimum ρ_λ(n) with an `Optimal`
/// certificate and a witness that re-validates through
/// `EdgeMultiset::covers_complete(λ)`; engines out of scope (the
/// heuristics always; DLX on nonzero-slack rows like ρ₃(6)) must say so
/// via `supports`, never answer wrong.
#[test]
fn exact_engines_agree_on_lambda_fold_optima() {
    // (n, λ, ρ_λ(n)) over the full tile universe — every one sits at
    // the scaled capacity bound ⌈λ·Σd(e)/n⌉ (see the λ-fold table test
    // in tests/paper_claims.rs for the bound-side pinning).
    for (n, lambda, expected) in [(5u32, 2u32, 6usize), (6, 2, 9), (7, 2, 12), (5, 3, 9), (6, 3, 14)] {
        let problem = Problem::lambda_fold(n, lambda);
        let request = SolveRequest::find_optimal().with_max_nodes(200_000_000);
        for engine in engines() {
            let name = engine.name();
            if !engine.supports(&problem, &request) {
                assert!(
                    matches!(name, "dlx" | "greedy" | "greedy-improve" | "anneal"),
                    "{name} must support λ-fold specs"
                );
                continue;
            }
            assert!(EXACT.contains(&name), "unexpected λ-fold engine {name}");
            let sol = engine.solve(&problem, &request);
            assert!(
                matches!(sol.optimality(), Optimality::Optimal { .. }),
                "{name} n={n} λ={lambda}: {:?}",
                sol.optimality()
            );
            let tiles = sol.covering().expect("optimal carries covering");
            assert_eq!(tiles.len(), expected, "{name}: ρ_{lambda}({n})");
            assert!(
                coverage_of(n, tiles).covers_complete(lambda),
                "{name} n={n}: witness misses λ = {lambda} coverage"
            );
            // The decisive refutation below the optimum.
            let below = engine.solve(
                &problem,
                &SolveRequest::prove_infeasible(expected as u32 - 1)
                    .with_max_nodes(200_000_000),
            );
            assert_eq!(
                *below.optimality(),
                Optimality::Infeasible,
                "{name} n={n} λ={lambda} at ρ_λ − 1"
            );
        }
    }
}

/// The DLX engine's declared scope: zero-slack specs — `λ·Σd(e)` must
/// divide evenly by `n`, demands at most 3. That admits every odd
/// complete instance (Theorem 1's partitions) *and* the even ones whose
/// total distance happens to divide — `n = 4, 8` yes, `n = 6` no
/// (`Σd = 27`, `27 mod 6 = 3`) — plus zero-slack λ-fold rows like
/// ρ₂(7), while ρ₃(6) (slack 3) stays out of scope.
#[test]
fn dlx_scope_is_zero_slack() {
    let dlx = engine_by_name("dlx").unwrap();
    let req = SolveRequest::find_optimal();
    for n in [3u32, 5, 7, 9] {
        assert!(dlx.supports(&Problem::complete(n), &req), "odd n = {n}");
    }
    assert!(dlx.supports(&Problem::complete(4), &req), "Σd(4) = 8 divides");
    assert!(dlx.supports(&Problem::complete(8), &req), "Σd(8) = 64 divides");
    assert!(!dlx.supports(&Problem::complete(6), &req), "27 mod 6 = 3");
    assert!(dlx.supports(&Problem::lambda_fold(7, 2), &req), "2·84 mod 7 = 0");
    assert!(dlx.supports(&Problem::lambda_fold(6, 2), &req), "2·27 mod 6 = 0");
    assert!(!dlx.supports(&Problem::lambda_fold(6, 3), &req), "3·27 mod 6 = 3");
}

/// The partition engine's declared scope: any spec with demands in
/// `1..=3`, slack notwithstanding — it is the explicit entry to the
/// slack-budgeted kernel (the frontier probes use it to force the
/// partition route on slack-`n` instances the auto-dispatch skips).
#[test]
fn partition_scope_is_any_packed_demand() {
    let partition = engine_by_name("partition").unwrap();
    let req = SolveRequest::find_optimal();
    for n in 4u32..=9 {
        assert!(partition.supports(&Problem::complete(n), &req), "n = {n}");
    }
    assert!(partition.supports(&Problem::lambda_fold(6, 2), &req));
    assert!(partition.supports(&Problem::lambda_fold(6, 3), &req));
}

/// Heuristics refuse to "prove" anything.
#[test]
fn heuristics_do_not_claim_proofs() {
    for name in ["greedy", "greedy-improve", "anneal"] {
        let engine = engine_by_name(name).unwrap();
        let problem = Problem::complete(7);
        assert!(
            !engine.supports(&problem, &SolveRequest::prove_infeasible(5)),
            "{name} claims to prove infeasibility"
        );
    }
}

/// `SymmetryMode::Off` and the reduced modes agree on `ρ(n)` and on the
/// `ProveInfeasible(ρ(n) − 1)` verdicts for every `n ≤ 10` over the full
/// tile universe — the orbit filtering and the strengthened bound must
/// never change an answer, only the node count. (The `n = 10` `Off` run
/// is the suite's heavyweight: the unreduced 13.45M-node BENCH_1 witness
/// search.)
#[test]
fn symmetry_modes_agree_on_rho_up_to_n10() {
    for n in 4..=10u32 {
        let problem = Problem::complete(n);
        let rho = rho_formula(n) as u32;
        let engine = engine_by_name("bitset").unwrap();
        for sym in [SymmetryMode::Off, SymmetryMode::Root, SymmetryMode::Full] {
            let optimal = engine.solve(
                &problem,
                &SolveRequest::find_optimal()
                    .with_symmetry(sym)
                    .with_max_nodes(200_000_000),
            );
            assert!(
                matches!(optimal.optimality(), Optimality::Optimal { .. }),
                "n={n} {sym:?}: {:?}",
                optimal.optimality()
            );
            assert_eq!(optimal.size(), Some(rho as usize), "n={n} {sym:?}");
            assert_covers_complete(n, optimal.covering().unwrap());
            let below = engine.solve(
                &problem,
                &SolveRequest::prove_infeasible(rho - 1)
                    .with_symmetry(sym)
                    .with_max_nodes(200_000_000),
            );
            assert_eq!(
                *below.optimality(),
                Optimality::Infeasible,
                "n={n} {sym:?} at rho-1"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Dihedral action correctness, property-tested across ring sizes and
    /// universe restrictions: every group element maps tiles to valid
    /// universe tiles with identical load/waste/diameter metadata, the
    /// canonical images are orbit invariants agreeing with the ring
    /// crate's reference `canonical_tile`, and the orbits partition the
    /// universe.
    #[test]
    fn dihedral_action_is_correct(
        n in 5u32..=11,
        max_len in 3usize..=5,
        restrict_gap in any::<bool>(),
    ) {
        let ring = Ring::new(n);
        let max_gap = if restrict_gap { ring.diameter().max(2) } else { n };
        let u = TileUniverse::with_max_gap(ring, max_len.min(n as usize), max_gap);
        let d = u.dihedral().expect("2n <= 64 for n <= 11");
        prop_assert_eq!(d.order(), 2 * n);
        let t_count = u.len() as u32;
        let mut orbit_sum = 0u64;
        for t in 0..t_count {
            let tile = u.tile(t);
            // Canonical image: a valid universe tile with identical
            // metadata, idempotent, and an orbit invariant.
            let canon = d.canonical_tile(t);
            prop_assert_eq!(d.canonical_tile(canon), canon, "idempotent");
            prop_assert_eq!(u.tile_load(canon), u.tile_load(t));
            prop_assert_eq!(u.tile_waste(canon), u.tile_waste(t));
            prop_assert_eq!(u.tile_diam_count(canon), u.tile_diam_count(t));
            prop_assert_eq!(u.tile(canon).len(), tile.len());
            // The ring crate's reference canonicalization lands in the
            // same orbit class.
            let ref_canon = ring_symmetry::canonical_tile(ring, tile);
            let ref_idx = u.index_of(&ref_canon).expect("closed under D_n");
            prop_assert_eq!(d.canonical_tile(ref_idx), canon, "reference orbit agrees");
            // Orbit size divides 2n and matches the reference count; sum
            // over representatives partitions the universe.
            if d.is_orbit_rep(t) {
                let orbit: std::collections::BTreeSet<u32> =
                    (0..d.order()).map(|g| d.tile_image(g, t)).collect();
                prop_assert_eq!(
                    orbit.len(),
                    ring_symmetry::orbit_size(ring, tile),
                    "orbit size matches reference"
                );
                prop_assert_eq!(2 * n as usize % orbit.len(), 0);
                orbit_sum += orbit.len() as u64;
            }
        }
        prop_assert_eq!(orbit_sum, t_count as u64, "orbits partition the universe");
    }

    /// Off/Root equivalence on randomized partial instances: symmetry
    /// reduction may not flip any within-budget verdict, even when the
    /// spec itself is asymmetric.
    #[test]
    fn symmetry_modes_agree_on_random_subsets(
        n in 6u32..=9,
        seed in any::<u64>(),
    ) {
        let ring = Ring::new(n);
        let m = n as usize * (n as usize - 1) / 2;
        // Deterministic pseudo-random subset of requests from the seed.
        let mut state = seed | 1;
        let mut requests = Vec::new();
        for dense in 0..m {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state >> 60 < 8 {
                requests.push(Edge::from_dense_index(dense, n as usize));
            }
        }
        if requests.is_empty() {
            requests.push(Edge::new(0, n / 2));
        }
        let problem = Problem::new(
            TileUniverse::new(ring, n as usize),
            CoverSpec::subset(n, &requests),
        );
        let engine = engine_by_name("bitset").unwrap();
        let mut verdicts = Vec::new();
        for sym in [SymmetryMode::Off, SymmetryMode::Root, SymmetryMode::Full] {
            let sol = engine.solve(
                &problem,
                &SolveRequest::find_optimal()
                    .with_symmetry(sym)
                    .with_max_nodes(50_000_000),
            );
            let size = sol.size();
            prop_assert!(size.is_some(), "{sym:?}: {:?}", sol.optimality());
            verdicts.push(size.unwrap());
        }
        prop_assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "optimum differs across modes: {verdicts:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Request-builder round-trip: every combination of objective,
    /// limits, and policy reads back exactly as it was written.
    #[test]
    fn request_builder_round_trips(
        kind in 0u8..3,
        budget in 0u32..64,
        max_nodes in 1u64..=u64::MAX,
        deadline_on in any::<bool>(),
        deadline_raw in 0u64..100_000,
        threads in 0usize..16,
        prefix_depth in 0u32..8,
        policy_kind in 0u8..3,
        sym_kind in 0u8..3,
    ) {
        let objective = match kind {
            0 => Objective::FindOptimal,
            1 => Objective::WithinBudget(budget),
            _ => Objective::ProveInfeasible(budget),
        };
        let policy = match policy_kind {
            0 => ExecPolicy::Sequential,
            1 => ExecPolicy::Parallel { threads, prefix_depth },
            _ => ExecPolicy::Auto,
        };
        let symmetry = match sym_kind {
            0 => SymmetryMode::Off,
            1 => SymmetryMode::Root,
            _ => SymmetryMode::Full,
        };
        let deadline_ms = deadline_on.then_some(deadline_raw);
        let token = CancelToken::new();
        // The default is Root — the reduced search is opt-out.
        prop_assert_eq!(SolveRequest::new(objective).symmetry(), SymmetryMode::Root);
        let mut request = SolveRequest::new(objective)
            .with_max_nodes(max_nodes)
            .with_cancel_token(token.clone())
            .with_policy(policy)
            .with_symmetry(symmetry);
        if let Some(ms) = deadline_ms {
            request = request.with_deadline(Duration::from_millis(ms));
        }
        prop_assert_eq!(request.objective(), objective);
        prop_assert_eq!(request.max_nodes(), max_nodes);
        prop_assert_eq!(request.deadline(), deadline_ms.map(Duration::from_millis));
        prop_assert_eq!(request.policy(), policy);
        prop_assert_eq!(request.symmetry(), symmetry);
        // The token is shared, not copied: cancelling the caller's clone
        // must be visible through the request's handle.
        prop_assert!(!request.cancel_token().is_cancelled());
        token.cancel();
        prop_assert!(request.cancel_token().is_cancelled());
    }

    /// The convenience constructors agree with `new`.
    #[test]
    fn request_shorthands_match_new(budget in 0u32..64) {
        prop_assert_eq!(
            SolveRequest::find_optimal().objective(),
            Objective::FindOptimal
        );
        prop_assert_eq!(
            SolveRequest::within_budget(budget).objective(),
            Objective::WithinBudget(budget)
        );
        prop_assert_eq!(
            SolveRequest::prove_infeasible(budget).objective(),
            Objective::ProveInfeasible(budget)
        );
    }
}
