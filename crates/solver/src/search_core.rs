//! The iterative, allocation-free search cores: [`IterCore`] for
//! unit-demand specs, and its word-parallel λ-fold sibling
//! [`LaneCore`] over packed 2-bit residual lanes.
//!
//! This is the engine behind [`crate::bnb::budget_search`] on every
//! unit-demand instance: the same branch & bound the recursive
//! [`crate::bnb`] reference runs — identical branch order, candidate
//! scoring, dominance and orbit filtering, hence **identical node counts
//! when the memo is off** — rebuilt so a search node costs near-zero
//! bookkeeping:
//!
//! * **Explicit stack, depth-indexed arenas.** Recursion becomes a loop
//!   over per-depth [`Frame`]s whose candidate/score buffers are reused
//!   across every node at that depth; dominance masks live in one arena
//!   pre-sized from [`TileUniverse::max_candidates`]. After warm-up no
//!   search node allocates.
//! * **Incremental bound ingredients.** Residual distance, the
//!   uncovered-diameter count, and per-vertex uncovered degrees (with
//!   the odd-degree population the parity/T-join bound needs) are
//!   maintained on place/unplace — O(changed chords) per node — so the
//!   per-node vertex-degree bound drops from `n` mask intersections to
//!   an `n`-entry array scan and [`parity_join_bound_from_odd`] runs in
//!   constant time at every depth. (A per-tile useful-load array was
//!   measured too: updating every affected tile per placement cost ~2×
//!   what recomputing loads at scoring time does, so scoring recomputes
//!   — the memo, not array plumbing, is where the nodes go.)
//! * **Residual-state dominance memo.** See [`crate::memo`]: nodes whose
//!   uncovered set was already exhausted with an equal-or-better budget
//!   are pruned. Under [`SymmetryMode::Full`] the memo keys by the
//!   *canonical* (lexicographically smallest) dihedral image of the
//!   residual state, and sibling filtering upgrades from the pointwise
//!   to the **setwise** prefix stabilizer — the ROADMAP's
//!   canonical-prefix reduction, in the two places it is sound.
//!
//! Dominance subset tests and scratch recycling touch only the words a
//! tile's mask spans ([`TileUniverse::tile_mask_span`]) instead of the
//! full chord width.

use crate::api::Exhaustion;
use crate::bitset::{ChordSet, LaneSet, LANES_PER_WORD, LANE_LOW};
use crate::bnb::{
    decode_cause, encode_cause, CoverSpec, Outcome, RunLimits, Stats, SymmetryMode,
};
use crate::lower_bound::{diameter_slack_bound, parity_join_bound_from_odd};
use crate::memo::{MemoStore, KEY_WORDS};
use crate::tiles::DihedralTables;
use crate::TileUniverse;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// Per-depth iteration state: the node's filtered candidate list, the
/// cursor into it, and the memo key captured at entry (recorded if the
/// node exhausts). Buffers are reused by every node at this depth.
#[derive(Default)]
struct Frame {
    /// `(tile, new coverage, waste)` scoring scratch.
    scored: Vec<(u32, u32, u32)>,
    /// Candidates surviving dominance + orbit filtering, in order.
    cands: Vec<u32>,
    /// Next unexplored candidate.
    cursor: usize,
    /// Residual-state key/hash at node entry (memo bookkeeping).
    key: [u64; KEY_WORDS],
    hash: u64,
    /// Whether the node may be recorded on exhaust.
    memoable: bool,
}

/// What happened when the loop entered a node.
enum Enter {
    /// Demand satisfied — the placed prefix is a covering.
    Solved,
    /// A resource limit tripped; the whole search stops.
    Abort,
    /// Bound- or memo-pruned; backtrack.
    Dead,
    /// Candidates are staged in the depth's frame.
    Ready,
}

/// The iterative search over one budgeted probe. Mirrors
/// `bnb::SearchCtx<BitsetKernel>` observably (same nodes, same order,
/// same stats) while keeping all per-node state incremental.
pub(crate) struct IterCore<'a> {
    u: &'a TileUniverse,
    budget: u32,

    // ---- residual state, maintained on place/unplace ----
    /// Still-unsatisfied chords (priority space).
    uncovered: ChordSet,
    rem_dist: u64,
    rem_diam: u64,
    /// Per-vertex uncovered degree.
    deg: Vec<u32>,
    /// Number of vertices with odd uncovered degree (`|T|` of the
    /// parity bound).
    odd: u64,
    /// Incremental Zobrist hash of `uncovered` (0 when the memo is off).
    hash: u64,

    // ---- the explicit stack ----
    frames: Vec<Frame>,
    /// `undo[d]`: chords newly covered by the tile placed at depth `d`.
    undo: Vec<ChordSet>,
    chosen: Vec<u32>,

    // ---- dominance arena (slot = candidate position in the node) ----
    dom_masks: Vec<ChordSet>,
    /// Word span each arena slot was last written in (so retiring a
    /// slot clears only those words).
    dom_spans: Vec<(u32, u32)>,

    // ---- statistics and limits (as the recursive context) ----
    stats: Stats,
    max_nodes: u64,
    hit_limit: bool,
    stop_cause: Option<Exhaustion>,
    deadline: Option<Instant>,
    cancel: Option<&'a AtomicBool>,
    early_exit: Option<&'a AtomicBool>,
    shared_nodes: Option<(&'a AtomicU64, u64)>,
    synced_nodes: u64,

    // ---- symmetry ----
    mode: SymmetryMode,
    strong: bool,
    sym: Option<&'a DihedralTables>,
    spec_group: u64,
    /// `Full`: pointwise prefix stabilizer per depth (seeded with the
    /// spec group).
    stab_stack: Vec<u64>,
    /// `Full`: the placed tile multiset, kept sorted for the setwise
    /// stabilizer test.
    placed_sorted: Vec<u32>,
    image_scratch: Vec<u32>,
    sym_seen: Vec<u64>,
    sym_stamp: u64,

    // ---- memo ----
    /// The (possibly shared) refutation store this searcher probes and
    /// feeds. `None` = memo off; the search then reproduces its
    /// memo-free node counts bit for bit.
    store: Option<&'a MemoStore>,
    /// This searcher's generation tag in the store — hits on entries
    /// with another tag are counted as `shared_hits`.
    gen: u32,
    /// Key by the canonical dihedral image of the residual state
    /// (`Full` mode with the memo on).
    canon: bool,
}

impl<'a> IterCore<'a> {
    pub(crate) fn new(
        u: &'a TileUniverse,
        spec: &CoverSpec,
        budget: u32,
        lim: &'a RunLimits,
        requested: SymmetryMode,
        store: Option<&'a MemoStore>,
    ) -> Self {
        let m = u.num_chords();
        assert_eq!(spec.demand.len(), m as usize, "spec size mismatch");
        debug_assert!(spec.is_unit(), "iterative core requires unit demands");
        let strong = requested != SymmetryMode::Off;
        let (mode, sym, spec_group) = crate::bnb::resolve_symmetry(u, spec, requested);

        let n = u.ring().n();
        let diam = u.diam_chords();
        let mut uncovered = ChordSet::empty(m);
        let mut rem_dist = 0u64;
        let mut rem_diam = 0u64;
        let mut deg = vec![0u32; n as usize];
        for dense in 0..m {
            if spec.demand[dense as usize] > 0 {
                let pri = u.pri_of_dense(dense);
                uncovered.insert(pri);
                rem_dist += u.dist_of_pri(pri) as u64;
                rem_diam += (pri < diam) as u64;
                let (a, b) = u.chord_ends_of_pri(pri);
                deg[a as usize] += 1;
                deg[b as usize] += 1;
            }
        }
        let odd = deg.iter().filter(|&&d| d & 1 == 1).count() as u64;

        // A store built for another universe would prune on meaningless
        // key matches — treat it as absent.
        let store = store.filter(|s| s.compatible(u));
        let gen = store.map_or(0, |s| s.attach());
        let hash = store.map_or(0, |s| {
            uncovered.iter().fold(0u64, |h, c| h ^ s.chord_key(c))
        });
        let canon = store.is_some() && mode == SymmetryMode::Full;

        let max_cands = u.max_candidates() as usize;
        IterCore {
            u,
            budget,
            uncovered,
            rem_dist,
            rem_diam,
            deg,
            odd,
            hash,
            frames: Vec::new(),
            undo: Vec::new(),
            chosen: Vec::new(),
            dom_masks: (0..max_cands).map(|_| ChordSet::empty(m)).collect(),
            dom_spans: vec![(0, 0); max_cands],
            stats: Stats {
                sym_factor: 1,
                ..Stats::default()
            },
            max_nodes: lim.max_nodes,
            hit_limit: false,
            stop_cause: None,
            deadline: lim.deadline,
            cancel: lim.cancel.as_ref().map(|c| c.flag()),
            early_exit: None,
            shared_nodes: None,
            synced_nodes: 0,
            mode,
            strong,
            sym,
            spec_group,
            stab_stack: if mode == SymmetryMode::Full {
                vec![spec_group]
            } else {
                Vec::new()
            },
            placed_sorted: Vec::new(),
            image_scratch: Vec::new(),
            sym_seen: Vec::new(),
            sym_stamp: 0,
            store,
            gen,
            canon,
        }
    }

    /// Flushes local node counts into the shared counter; `true` when
    /// the global budget is exhausted.
    fn sync_shared_nodes(&mut self) -> bool {
        let Some((counter, cap)) = self.shared_nodes else {
            return false;
        };
        let delta = self.stats.nodes - self.synced_nodes;
        self.synced_nodes = self.stats.nodes;
        let total = counter.fetch_add(delta, Ordering::Relaxed) + delta;
        total > cap
    }

    /// Places tile `t`: covers its new chords and updates every
    /// incremental ingredient in one sweep over the changed chords.
    fn place(&mut self, t: u32) {
        if self.mode == SymmetryMode::Full {
            let top = *self.stab_stack.last().expect("stab stack seeded");
            let stab = self.sym.expect("tables exist in Full mode").tile_stab(t);
            self.stab_stack.push(top & stab);
            let pos = self.placed_sorted.partition_point(|&x| x < t);
            self.placed_sorted.insert(pos, t);
        }
        let depth = self.chosen.len();
        if self.undo.len() == depth {
            self.undo.push(ChordSet::empty(self.uncovered.len()));
        }
        let newly = &mut self.undo[depth];
        self.u.tile_mask(t).intersection_into(&self.uncovered, newly);
        self.uncovered.subtract(newly);
        let diam = self.u.diam_chords();
        for i in newly.iter() {
            let d = self.u.dist_of_pri(i);
            self.rem_dist -= d as u64;
            self.rem_diam -= (i < diam) as u64;
            let (a, b) = self.u.chord_ends_of_pri(i);
            for v in [a, b] {
                let dv = &mut self.deg[v as usize];
                if *dv & 1 == 1 {
                    self.odd -= 1;
                } else {
                    self.odd += 1;
                }
                *dv -= 1;
            }
            if let Some(store) = self.store {
                self.hash ^= store.chord_key(i);
            }
        }
        self.chosen.push(t);
    }

    /// Reverts the most recent placement.
    fn unplace(&mut self) {
        let t = self.chosen.pop().expect("unplace without place");
        let depth = self.chosen.len();
        let newly = &self.undo[depth];
        let diam = self.u.diam_chords();
        for i in newly.iter() {
            let d = self.u.dist_of_pri(i);
            self.rem_dist += d as u64;
            self.rem_diam += (i < diam) as u64;
            let (a, b) = self.u.chord_ends_of_pri(i);
            for v in [a, b] {
                let dv = &mut self.deg[v as usize];
                if *dv & 1 == 1 {
                    self.odd -= 1;
                } else {
                    self.odd += 1;
                }
                *dv += 1;
            }
            if let Some(store) = self.store {
                self.hash ^= store.chord_key(i);
            }
        }
        self.uncovered.union_with(newly);
        if self.mode == SymmetryMode::Full {
            self.stab_stack.pop();
            let pos = self.placed_sorted.partition_point(|&x| x < t);
            debug_assert_eq!(self.placed_sorted.get(pos), Some(&t));
            self.placed_sorted.remove(pos);
        }
    }

    /// The cheap per-node lower bound (capacity, diameter, vertex
    /// degree) from the incremental ingredients — value-identical to the
    /// recursive kernel's rescanning version.
    fn remaining_lb(&self) -> u64 {
        let n = self.u.ring().n() as u64;
        let mut lb = self.rem_dist.div_ceil(n).max(self.rem_diam);
        for &d in &self.deg {
            lb = lb.max((d as u64).div_ceil(2));
        }
        lb
    }

    /// The strong bound: the parity/T-join term first — constant-time
    /// from the incremental odd-degree count, and alone it settles the
    /// capacity-tight even refutations — then the pricier diameter-slack
    /// dual only if the node is still alive. Deep in a witness search
    /// the dual's loop body rarely runs at all: diameter chords carry
    /// top branch priority, so they are covered early and the
    /// uncovered-diameter iteration is empty (`rem_diam`, maintained
    /// incrementally, is the same information the capacity/diameter
    /// part of the cheap bound uses).
    fn strong_lb(&self, stop_above: u64) -> u64 {
        let parity = parity_join_bound_from_odd(self.u.ring().n(), self.rem_dist, self.odd);
        if parity > stop_above {
            return parity;
        }
        diameter_slack_bound(self.u, &self.uncovered, self.rem_dist, stop_above).max(parity)
    }

    /// The memo key of the current residual state: the raw uncovered
    /// words, or (canonical mode) the lexicographically smallest
    /// dihedral image. Returns `(key, hash, key_is_raw)`.
    fn state_key(&self) -> ([u64; KEY_WORDS], u64, bool) {
        let words = self.uncovered.words();
        let raw = [words[0], words.get(1).copied().unwrap_or(0), 0, 0];
        if !self.canon {
            return (raw, self.hash, true);
        }
        let store = self.store.expect("canonical mode implies a store");
        let sym = self.sym.expect("canonical mode implies tables");
        let mut best = raw;
        let mut best_hash = self.hash;
        let mut elements = self.spec_group & !1;
        while elements != 0 {
            let g = elements.trailing_zeros();
            elements &= elements - 1;
            let mut img = [0u64; KEY_WORDS];
            let mut h = 0u64;
            for c in self.uncovered.iter() {
                let ic = sym.chord_image(g, c);
                img[(ic / 64) as usize] |= 1u64 << (ic % 64);
                h ^= store.chord_key(ic);
            }
            if img < best {
                best = img;
                best_hash = h;
            }
        }
        (best, best_hash, best == raw)
    }

    /// Steps A–I of one node: satisfied / limits / bounds / memo /
    /// candidate staging. `check_memo` is false when the caller already
    /// probed this state in the store as a candidate child
    /// ([`IterCore::skip_candidate`]) — the key/hash are still computed
    /// so the node can be recorded on exhaust.
    fn enter_node(&mut self, check_memo: bool) -> Enter {
        if self.uncovered.is_empty() {
            return Enter::Solved;
        }
        self.stats.nodes += 1;
        if self.stats.nodes > self.max_nodes {
            self.hit_limit = true;
            self.stop_cause = Some(Exhaustion::NodeBudget);
            return Enter::Abort;
        }
        if self.stats.nodes.is_multiple_of(1024) {
            if let Some(flag) = self.early_exit {
                if flag.load(Ordering::Relaxed) {
                    self.hit_limit = true;
                    return Enter::Abort;
                }
            }
            if self.sync_shared_nodes() {
                self.hit_limit = true;
                self.stop_cause = Some(Exhaustion::NodeBudget);
                return Enter::Abort;
            }
        }
        if self.stats.nodes.is_multiple_of(4096) {
            if let Some(flag) = self.cancel {
                if flag.load(Ordering::Relaxed) {
                    self.hit_limit = true;
                    self.stop_cause = Some(Exhaustion::Cancelled);
                    return Enter::Abort;
                }
            }
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.hit_limit = true;
                    self.stop_cause = Some(Exhaustion::Deadline);
                    return Enter::Abort;
                }
            }
        }
        let used = self.chosen.len() as u64;
        if used + self.remaining_lb() > self.budget as u64 {
            self.stats.pruned += 1;
            return Enter::Dead;
        }
        if self.strong {
            let slack = self.budget as u64 - used;
            if self.strong_lb(slack) > slack {
                self.stats.pruned += 1;
                return Enter::Dead;
            }
        }
        let mut key = [0u64; KEY_WORDS];
        let mut khash = 0u64;
        let mut memoable = false;
        if let Some(store) = self.store {
            let (k, h, raw) = self.state_key();
            // Canonical keys depend on the *placed* state, so canonical
            // mode cannot pre-probe candidates and always checks here.
            if check_memo || self.canon {
                let slack = (self.budget as u64 - used) as u32;
                if let Some(owner) = store.dominated(h, k, 1, slack) {
                    self.stats.memo_hits += 1;
                    if owner != self.gen {
                        self.stats.shared_hits += 1;
                    }
                    if !raw {
                        self.stats.canon_pruned += 1;
                    }
                    return Enter::Dead;
                }
            }
            key = k;
            khash = h;
            memoable = true;
        }
        let branch = self.uncovered.first_set().expect("unsatisfied demand exists");
        self.fill_candidates(branch);
        let depth = self.chosen.len();
        let f = &mut self.frames[depth];
        f.cursor = 0;
        f.key = key;
        f.hash = khash;
        f.memoable = memoable;
        Enter::Ready
    }

    /// Scores, sorts, dominance-filters, and orbit-filters the branch
    /// chord's candidates into the current depth's frame — the exact
    /// sequence of the recursive `sorted_candidates`, over reused
    /// buffers.
    fn fill_candidates(&mut self, branch: u32) {
        let depth = self.chosen.len();
        // Workers of the parallel driver enter at their prefix depth, so
        // the arena may need to leap several levels at once.
        while self.frames.len() <= depth {
            self.frames.push(Frame::default());
        }
        let u = self.u;
        let n = u.ring().n();
        let mut scored = std::mem::take(&mut self.frames[depth].scored);
        let mut cands = std::mem::take(&mut self.frames[depth].cands);
        scored.clear();
        cands.clear();
        // Score each candidate's new coverage and wasted capacity over
        // the words its mask spans (value-identical to the recursive
        // kernel's `new_coverage`).
        for &t in u.candidates_pri(branch) {
            let (lo, hi) = u.tile_mask_span(t);
            let mut cov = 0u32;
            let mut useful = 0u32;
            for (wi, (a, b)) in u.tile_mask(t).words()[lo as usize..hi as usize]
                .iter()
                .zip(&self.uncovered.words()[lo as usize..hi as usize])
                .enumerate()
            {
                let mut w = a & b;
                cov += w.count_ones();
                while w != 0 {
                    let i = (lo + wi as u32) * 64 + w.trailing_zeros();
                    useful += u.dist_of_pri(i);
                    w &= w - 1;
                }
            }
            if cov > 0 {
                let waste = n - useful.min(n);
                scored.push((t, cov, waste));
            }
        }
        scored.sort_by_key(|&(_, cov, waste)| (std::cmp::Reverse(cov), waste));

        // Dominance: a candidate whose useful coverage is a subset of an
        // earlier one's is dropped (sorting put dominators first; ties
        // keep the first occurrence). Mask writes and subset tests touch
        // only each tile's word span.
        let c = scored.len();
        debug_assert!(c <= self.dom_masks.len(), "arena sized from max_candidates");
        if c > 1 {
            for (slot, &(t, _, _)) in scored.iter().enumerate() {
                let (lo, hi) = u.tile_mask_span(t);
                let (plo, phi) = self.dom_spans[slot];
                self.dom_masks[slot].clear_words(plo as usize, phi as usize);
                u.tile_mask(t).intersection_into_in(
                    &self.uncovered,
                    &mut self.dom_masks[slot],
                    lo as usize,
                    hi as usize,
                );
                self.dom_spans[slot] = (lo, hi);
            }
            for (i, &(t, _, _)) in scored.iter().enumerate() {
                if i > 0 {
                    let (lo, hi) = u.tile_mask_span(t);
                    let (earlier, rest) = self.dom_masks.split_at(i);
                    let mask_i = &rest[0];
                    if earlier
                        .iter()
                        .any(|prior| mask_i.is_subset_of_in(prior, lo as usize, hi as usize))
                    {
                        self.stats.dominated += 1;
                        continue;
                    }
                }
                cands.push(t);
            }
        } else {
            cands.extend(scored.iter().map(|&(t, _, _)| t));
        }

        self.filter_symmetric(branch, &mut cands);
        let f = &mut self.frames[depth];
        f.scored = scored;
        f.cands = cands;
    }

    /// Sibling orbit filtering, in place. `Root` filters the empty
    /// prefix under the spec group; `Full` filters every depth under the
    /// **setwise** stabilizer of the placed tile multiset (a superset of
    /// the recursive path's pointwise stabilizer — the extra elements'
    /// prunes are counted as `canon_pruned`).
    fn filter_symmetric(&mut self, branch: u32, cands: &mut Vec<u32>) {
        let Some(sym) = self.sym else { return };
        let (group, pointwise) = match self.mode {
            SymmetryMode::Off => return,
            SymmetryMode::Root => {
                if !self.chosen.is_empty() {
                    return;
                }
                (self.spec_group, self.spec_group)
            }
            SymmetryMode::Full => {
                let pw = *self.stab_stack.last().expect("stab stack seeded");
                // The setwise upgrade is part of the canonical machinery:
                // with the memo (and hence canonical pruning) off, `Full`
                // filters exactly as the recursive reference does, so the
                // differential node-count gate stays exact.
                if self.canon {
                    (self.setwise_stab(pw, sym), pw)
                } else {
                    (pw, pw)
                }
            }
        };
        let filter = group & sym.chord_stab(branch);
        if self.chosen.is_empty() {
            self.stats.sym_factor = self.stats.sym_factor.max(filter.count_ones());
        }
        if filter & !1 == 0 {
            return;
        }
        if self.sym_seen.len() < sym.num_tiles() as usize {
            self.sym_seen.resize(sym.num_tiles() as usize, 0);
        }
        self.sym_stamp += 1;
        let stamp = self.sym_stamp;
        let pw_filter = pointwise & sym.chord_stab(branch);
        let sym_seen = &mut self.sym_seen;
        let stats = &mut self.stats;
        cands.retain(|&t| {
            let mut elements = filter & !1;
            while elements != 0 {
                let g = elements.trailing_zeros();
                elements &= elements - 1;
                let image = sym.tile_image(g, t);
                if image != t && sym_seen[image as usize] == stamp {
                    if pw_filter >> g & 1 == 1 {
                        stats.sym_pruned += 1;
                    } else {
                        stats.canon_pruned += 1;
                    }
                    return false;
                }
            }
            sym_seen[t as usize] = stamp;
            true
        });
    }

    /// The setwise stabilizer of the placed tile multiset inside the
    /// spec group: every pointwise element, plus each element mapping
    /// the multiset onto itself (tested against the sorted placement
    /// list — at most `2n` sorts of a ≤-budget-length vector per node).
    fn setwise_stab(&mut self, pointwise: u64, sym: &DihedralTables) -> u64 {
        let mut stab = pointwise;
        let mut rest = self.spec_group & !pointwise;
        while rest != 0 {
            let g = rest.trailing_zeros();
            rest &= rest - 1;
            self.image_scratch.clear();
            self.image_scratch
                .extend(self.placed_sorted.iter().map(|&t| sym.tile_image(g, t)));
            self.image_scratch.sort_unstable();
            if self.image_scratch == self.placed_sorted {
                stab |= 1u64 << g;
            }
        }
        stab
    }

    /// Drives the search to a conclusion from the current placement
    /// depth (the root for the sequential search; the assigned prefix
    /// for a parallel worker — siblings of the prefix belong to other
    /// workers, so the loop never retreats past it). `true` = covering
    /// found (in `chosen`); `false` = subtree exhausted or limit hit
    /// (see `hit_limit`).
    fn run(&mut self) -> bool {
        let base = self.chosen.len();
        let mut entering = true;
        // Only the subtree root needs the node-entry store probe:
        // deeper nodes were already probed as candidate children.
        let mut check_memo = true;
        loop {
            if entering {
                match self.enter_node(check_memo) {
                    Enter::Solved => return true,
                    Enter::Abort => return false,
                    Enter::Dead => {
                        if self.chosen.len() == base {
                            return false;
                        }
                        self.unplace();
                        entering = false;
                        continue;
                    }
                    Enter::Ready => {}
                }
            }
            let depth = self.chosen.len();
            let f = &mut self.frames[depth];
            if f.cursor < f.cands.len() {
                let t = f.cands[f.cursor];
                f.cursor += 1;
                // The candidate-level store probe: a child whose residual
                // state is already refuted with enough slack is skipped
                // without ever being placed or counted as a node.
                if self.skip_candidate(t) {
                    entering = false;
                    continue;
                }
                self.place(t);
                entering = true;
                check_memo = self.canon;
            } else {
                if f.memoable {
                    let (hash, key) = (f.hash, f.key);
                    let rem = self.budget - depth as u32;
                    self.store
                        .expect("memoable implies a store")
                        .record(hash, key, 1, rem, self.gen);
                }
                if depth == base {
                    return false;
                }
                self.unplace();
                entering = false;
            }
        }
    }

    /// Probes the store for candidate `t`'s child state before placing
    /// it. Returns `true` (and counts a memo hit) when the child is
    /// already refuted with at least the child's slack — the placement,
    /// the node, and the whole subtree are skipped. Never consults the
    /// store on a child that would be a covering, and never runs in
    /// canonical mode (whose keys need the placed state).
    fn skip_candidate(&mut self, t: u32) -> bool {
        let Some(store) = self.store else {
            return false;
        };
        if self.canon {
            return false;
        }
        let words = self.uncovered.words();
        let mut key = [words[0], words.get(1).copied().unwrap_or(0), 0, 0];
        let mut h = self.hash;
        let (lo, hi) = self.u.tile_mask_span(t);
        let tmask = self.u.tile_mask(t).words();
        for w in lo as usize..hi as usize {
            let mut m = tmask[w] & key[w];
            key[w] &= !m;
            while m != 0 {
                let c = (w as u32) * 64 + m.trailing_zeros();
                h ^= store.chord_key(c);
                m &= m - 1;
            }
        }
        if key == [0; KEY_WORDS] {
            return false;
        }
        let child_used = self.chosen.len() as u32 + 1;
        let slack = self.budget.saturating_sub(child_used);
        if let Some(owner) = store.dominated(h, key, 1, slack) {
            self.stats.memo_hits += 1;
            if owner != self.gen {
                self.stats.shared_hits += 1;
            }
            return true;
        }
        false
    }

    /// Final statistics (stamps the store's resident entry count — a
    /// shared store reports its *total* population, not this searcher's
    /// contribution).
    fn take_stats(&mut self) -> Stats {
        self.stats.memo_entries = self.store.map_or(0, |s| s.len());
        self.stats
    }
}

/// Budgeted iterative search over the bitset state — the unit-demand
/// engine path. Same contract as the recursive `bnb::search`.
pub(crate) fn search_iterative(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    lim: &RunLimits,
    sym: SymmetryMode,
    store: Option<&MemoStore>,
) -> (Outcome, Stats, Option<Exhaustion>) {
    let mut core = IterCore::new(u, spec, budget, lim, sym, store);
    if core.run() {
        let chosen = core.chosen.clone();
        (Outcome::Feasible(chosen), core.take_stats(), None)
    } else if core.hit_limit {
        let cause = core.stop_cause;
        (Outcome::NodeLimit, core.take_stats(), cause)
    } else {
        (Outcome::Infeasible, core.take_stats(), None)
    }
}

/// The frontier-parallel driver over [`IterCore`] workers: expands a
/// breadth-first frontier of independent prefixes, then drains it on a
/// work-sharing rayon scope with a shared early-exit flag and a global
/// node budget — the iterative twin of `bnb::search_parallel`, which
/// keeps serving λ-fold specs. The two drivers deliberately mirror each
/// other stanza for stanza (expansion accounting, pre-spawn guards,
/// stop-cause ranking): a fix to either's scheduling logic belongs in
/// both.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search_iterative_parallel(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    lim: &RunLimits,
    threads: usize,
    prefix_per_thread: usize,
    sym: SymmetryMode,
    store: Option<&MemoStore>,
) -> (Outcome, Stats, Option<Exhaustion>) {
    let max_nodes = lim.max_nodes;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let threads = pool.current_num_threads();
    let mut root = IterCore::new(u, spec, budget, lim, sym, store);
    if root.uncovered.is_empty() {
        return (Outcome::Feasible(Vec::new()), root.take_stats(), None);
    }
    let root_infeasible = root.remaining_lb() > budget as u64
        || (root.strong && root.strong_lb(budget as u64) > budget as u64);
    if root_infeasible {
        return (
            Outcome::Infeasible,
            Stats {
                nodes: 1,
                pruned: 1,
                sym_factor: 1,
                ..Stats::default()
            },
            None,
        );
    }

    // Breadth-first frontier expansion, mirroring the recursive driver.
    let target = threads * prefix_per_thread.max(1);
    let mut frontier: VecDeque<Vec<u32>> = VecDeque::from([Vec::new()]);
    while frontier.len() < target {
        let Some(prefix) = frontier.pop_front() else {
            break;
        };
        if let Some(cause) = lim.stop_requested() {
            return (Outcome::NodeLimit, root.take_stats(), Some(cause));
        }
        for &t in &prefix {
            root.place(t);
        }
        let mut early: Option<Outcome> = None;
        if root.uncovered.is_empty() {
            early = Some(Outcome::Feasible(root.chosen.clone()));
        } else {
            root.stats.nodes += 1;
            let prefix_slack = (budget as u64).saturating_sub(root.chosen.len() as u64);
            if root.stats.nodes > max_nodes {
                early = Some(Outcome::NodeLimit);
            } else if root.chosen.len() as u64 + root.remaining_lb() > budget as u64
                || (root.strong && root.strong_lb(prefix_slack) > prefix_slack)
            {
                root.stats.pruned += 1;
            } else {
                let branch = root.uncovered.first_set().expect("unsatisfied");
                root.fill_candidates(branch);
                for &t in &root.frames[root.chosen.len()].cands {
                    let mut child = prefix.clone();
                    child.push(t);
                    frontier.push_back(child);
                }
            }
        }
        for _ in 0..prefix.len() {
            root.unplace();
        }
        if let Some(outcome) = early {
            let cause =
                matches!(outcome, Outcome::NodeLimit).then_some(Exhaustion::NodeBudget);
            return (outcome, root.take_stats(), cause);
        }
    }
    let expand_stats = root.take_stats();
    drop(root);
    if frontier.is_empty() {
        return (Outcome::Infeasible, expand_stats, None);
    }

    let found = AtomicBool::new(false);
    let limit_hit = AtomicBool::new(false);
    let stop_cause = AtomicU8::new(0);
    let nodes = AtomicU64::new(expand_stats.nodes);
    let pruned = AtomicU64::new(expand_stats.pruned);
    let dominated = AtomicU64::new(expand_stats.dominated);
    let sym_pruned = AtomicU64::new(expand_stats.sym_pruned);
    let canon_pruned = AtomicU64::new(expand_stats.canon_pruned);
    let memo_hits = AtomicU64::new(expand_stats.memo_hits);
    let shared_hits = AtomicU64::new(expand_stats.shared_hits);
    let sym_factor = AtomicU32::new(expand_stats.sym_factor);
    let solution = std::sync::Mutex::new(None::<Vec<u32>>);

    pool.scope(|scope| {
        for prefix in &frontier {
            let found = &found;
            let limit_hit = &limit_hit;
            let stop_cause = &stop_cause;
            let nodes = &nodes;
            let pruned = &pruned;
            let dominated = &dominated;
            let sym_pruned = &sym_pruned;
            let canon_pruned = &canon_pruned;
            let memo_hits = &memo_hits;
            let shared_hits = &shared_hits;
            let sym_factor = &sym_factor;
            let solution = &solution;
            scope.spawn(move |_| {
                if found.load(Ordering::Relaxed) {
                    return;
                }
                if nodes.load(Ordering::Relaxed) >= max_nodes {
                    limit_hit.store(true, Ordering::Relaxed);
                    stop_cause
                        .fetch_max(encode_cause(Exhaustion::NodeBudget), Ordering::Relaxed);
                    return;
                }
                let worker_lim = RunLimits {
                    max_nodes: u64::MAX,
                    deadline: lim.deadline,
                    cancel: lim.cancel.clone(),
                };
                // Workers share one store: each attaches with its own
                // generation, so hits on another worker's refutations
                // are visible as `shared_hits`.
                let mut ctx = IterCore::new(u, spec, budget, &worker_lim, sym, store);
                ctx.early_exit = Some(found);
                ctx.shared_nodes = Some((nodes, max_nodes));
                for &t in prefix {
                    ctx.place(t);
                }
                let ok = ctx.run();
                ctx.sync_shared_nodes();
                let st = ctx.take_stats();
                pruned.fetch_add(st.pruned, Ordering::Relaxed);
                dominated.fetch_add(st.dominated, Ordering::Relaxed);
                sym_pruned.fetch_add(st.sym_pruned, Ordering::Relaxed);
                canon_pruned.fetch_add(st.canon_pruned, Ordering::Relaxed);
                memo_hits.fetch_add(st.memo_hits, Ordering::Relaxed);
                shared_hits.fetch_add(st.shared_hits, Ordering::Relaxed);
                sym_factor.fetch_max(st.sym_factor, Ordering::Relaxed);
                if ok {
                    found.store(true, Ordering::Relaxed);
                    *solution.lock().expect("poison-free") = Some(ctx.chosen.clone());
                    return;
                }
                if ctx.hit_limit && !found.load(Ordering::Relaxed) {
                    limit_hit.store(true, Ordering::Relaxed);
                    if let Some(cause) = ctx.stop_cause {
                        stop_cause.fetch_max(encode_cause(cause), Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let stats = Stats {
        nodes: nodes.load(Ordering::Relaxed),
        pruned: pruned.load(Ordering::Relaxed),
        dominated: dominated.load(Ordering::Relaxed),
        sym_pruned: sym_pruned.load(Ordering::Relaxed),
        canon_pruned: canon_pruned.load(Ordering::Relaxed),
        memo_hits: memo_hits.load(Ordering::Relaxed),
        shared_hits: shared_hits.load(Ordering::Relaxed),
        // One store serves every worker: report its population, not a
        // per-worker sum.
        memo_entries: store.map_or(0, |s| s.len()),
        sym_factor: sym_factor.load(Ordering::Relaxed),
        partition_probes: 0,
    };
    let sol = solution.lock().expect("poison-free").take();
    match sol {
        Some(sol) => (Outcome::Feasible(sol), stats, None),
        None if limit_hit.load(Ordering::Relaxed) => (
            Outcome::NodeLimit,
            stats,
            Some(decode_cause(stop_cause.load(Ordering::Relaxed))),
        ),
        None => (Outcome::Infeasible, stats, None),
    }
}

// ---------------------------------------------------------------------------
// The λ-fold lane core
// ---------------------------------------------------------------------------

/// Per-tile lane-space masks: each tile's chord set re-expressed with one
/// [`LANE_LOW`] bit per chord in the 2-bit-lane layout of [`LaneSet`],
/// plus the lane-word span the mask occupies. Built once per search (or
/// once per parallel driver, shared by every worker) so a λ-fold
/// placement is a handful of masked word subtracts.
pub(crate) struct LaneTables {
    lane_words: usize,
    /// `masks[t * lane_words .. (t + 1) * lane_words]` = tile `t`'s mask.
    masks: Vec<u64>,
    /// Lane-word span of each tile's mask (`lo..hi`).
    spans: Vec<(u32, u32)>,
}

impl LaneTables {
    pub(crate) fn build(u: &TileUniverse) -> Self {
        let lane_words = u.num_chords().div_ceil(LANES_PER_WORD) as usize;
        let nt = u.len();
        let mut masks = vec![0u64; nt * lane_words];
        let mut spans = vec![(0u32, 0u32); nt];
        for (t, span) in spans.iter_mut().enumerate() {
            let base = t * lane_words;
            let mut lo = lane_words as u32;
            let mut hi = 0u32;
            for &c in u.tile_chords(t as u32) {
                let w = c / LANES_PER_WORD;
                masks[base + w as usize] |= 1u64 << (2 * (c % LANES_PER_WORD));
                lo = lo.min(w);
                hi = hi.max(w + 1);
            }
            *span = if lo < hi { (lo, hi) } else { (0, 0) };
        }
        LaneTables {
            lane_words,
            masks,
            spans,
        }
    }

    /// Lane words per residual vector (shared by the partition kernel).
    #[inline]
    pub(crate) fn lane_words(&self) -> usize {
        self.lane_words
    }

    #[inline]
    pub(crate) fn mask(&self, t: u32) -> &[u64] {
        let base = t as usize * self.lane_words;
        &self.masks[base..base + self.lane_words]
    }

    #[inline]
    pub(crate) fn span(&self, t: u32) -> (u32, u32) {
        self.spans[t as usize]
    }
}

/// The iterative λ-fold search over packed residual lanes — the
/// word-parallel sibling of [`IterCore`] for specs with demands in
/// `2..=3` (λ-fold and mixed-multiplicity instances).
///
/// State is the [`LaneSet`] of per-chord residual demands plus the
/// **support** [`ChordSet`] (chords with residual > 0), maintained
/// together on place/unplace. The support set is what the unit
/// machinery consumes unchanged: branch selection, candidate scoring,
/// dominance subset tests (sound under multiplicities by multiset
/// replacement — a tile whose live coverage is contained in an earlier
/// candidate's can be swapped for that candidate in any covering), and
/// the diameter-slack dual (a valid residual-LP relaxation because
/// every support chord retains ≥ 1 unit of demand). The capacity,
/// diameter, vertex-degree, and parity/T-join bounds all scale by λ
/// through the residual-weighted `rem_dist` / `rem_diam` / `deg`
/// ingredients.
///
/// Differences from the unit core, by design:
/// * memo keys are the packed residual lane words (`bits = 2` in the
///   store — exact for every universe the store accepts, since
///   `compatible` caps chords at 128 = 4 lane words), hashed with
///   per-(chord, level) Zobrist keys;
/// * symmetry filtering is pointwise only (`Root` at the empty prefix,
///   `Full` under the prefix stabilizer) — no canonical keys, no
///   setwise upgrade, so the memo's candidate pre-probe always applies;
/// * a tile may be branched on repeatedly at successive depths (the
///   branch chord keeps its candidates while its residual drains).
pub(crate) struct LaneCore<'a> {
    u: &'a TileUniverse,
    lanes: &'a LaneTables,
    budget: u32,

    // ---- residual state, maintained on place/unplace ----
    /// Per-chord residual demand (priority space).
    residual: LaneSet,
    /// Chords with residual > 0 — the unit-machinery view of the state.
    support: ChordSet,
    /// Σ residual(c) · dist(c).
    rem_dist: u64,
    /// Σ residual(c) over diameter chords.
    rem_diam: u64,
    /// Per-vertex residual degree (Σ residual of incident chords).
    deg: Vec<u32>,
    odd: u64,
    /// Incremental level-Zobrist hash of the residual vector.
    hash: u64,

    // ---- the explicit stack ----
    frames: Vec<Frame>,
    /// `undo[d]`: per lane word, the [`LANE_LOW`] decrement mask the
    /// placement at depth `d` applied.
    undo: Vec<Vec<u64>>,
    chosen: Vec<u32>,

    // ---- dominance arena ----
    dom_masks: Vec<ChordSet>,
    dom_spans: Vec<(u32, u32)>,

    // ---- statistics and limits ----
    stats: Stats,
    max_nodes: u64,
    hit_limit: bool,
    stop_cause: Option<Exhaustion>,
    deadline: Option<Instant>,
    cancel: Option<&'a AtomicBool>,
    early_exit: Option<&'a AtomicBool>,
    shared_nodes: Option<(&'a AtomicU64, u64)>,
    synced_nodes: u64,

    // ---- symmetry (pointwise only) ----
    mode: SymmetryMode,
    strong: bool,
    sym: Option<&'a DihedralTables>,
    spec_group: u64,
    stab_stack: Vec<u64>,
    sym_seen: Vec<u64>,
    sym_stamp: u64,

    // ---- memo ----
    store: Option<&'a MemoStore>,
    gen: u32,
}

impl<'a> LaneCore<'a> {
    pub(crate) fn new(
        u: &'a TileUniverse,
        spec: &CoverSpec,
        budget: u32,
        lim: &'a RunLimits,
        requested: SymmetryMode,
        store: Option<&'a MemoStore>,
        lanes: &'a LaneTables,
    ) -> Self {
        let m = u.num_chords();
        assert_eq!(spec.demand.len(), m as usize, "spec size mismatch");
        debug_assert!(
            spec.demand.iter().all(|&d| d <= 3),
            "lane core requires demands ≤ 3"
        );
        let strong = requested != SymmetryMode::Off;
        let (mode, sym, spec_group) = crate::bnb::resolve_symmetry(u, spec, requested);

        let n = u.ring().n();
        let diam = u.diam_chords();
        let mut residual = LaneSet::zero(m);
        let mut support = ChordSet::empty(m);
        let mut rem_dist = 0u64;
        let mut rem_diam = 0u64;
        let mut deg = vec![0u32; n as usize];
        for pri in 0..m {
            let need = spec.demand[u.dense_of_pri(pri) as usize];
            if need > 0 {
                residual.set(pri, need);
                support.insert(pri);
                rem_dist += need as u64 * u.dist_of_pri(pri) as u64;
                if pri < diam {
                    rem_diam += need as u64;
                }
                let (a, b) = u.chord_ends_of_pri(pri);
                deg[a as usize] += need;
                deg[b as usize] += need;
            }
        }
        let odd = deg.iter().filter(|&&d| d & 1 == 1).count() as u64;

        let store = store.filter(|s| s.compatible(u));
        let gen = store.map_or(0, |s| s.attach());
        let hash = store.map_or(0, |s| {
            support.iter().fold(0u64, |mut h, c| {
                for v in 1..=residual.get(c) {
                    h ^= s.chord_level_key(c, v);
                }
                h
            })
        });

        let max_cands = u.max_candidates() as usize;
        LaneCore {
            u,
            lanes,
            budget,
            residual,
            support,
            rem_dist,
            rem_diam,
            deg,
            odd,
            hash,
            frames: Vec::new(),
            undo: Vec::new(),
            chosen: Vec::new(),
            dom_masks: (0..max_cands).map(|_| ChordSet::empty(m)).collect(),
            dom_spans: vec![(0, 0); max_cands],
            stats: Stats {
                sym_factor: 1,
                ..Stats::default()
            },
            max_nodes: lim.max_nodes,
            hit_limit: false,
            stop_cause: None,
            deadline: lim.deadline,
            cancel: lim.cancel.as_ref().map(|c| c.flag()),
            early_exit: None,
            shared_nodes: None,
            synced_nodes: 0,
            mode,
            strong,
            sym,
            spec_group,
            stab_stack: if mode == SymmetryMode::Full {
                vec![spec_group]
            } else {
                Vec::new()
            },
            sym_seen: Vec::new(),
            sym_stamp: 0,
            store,
            gen,
        }
    }

    /// Flushes local node counts into the shared counter; `true` when
    /// the global budget is exhausted.
    fn sync_shared_nodes(&mut self) -> bool {
        let Some((counter, cap)) = self.shared_nodes else {
            return false;
        };
        let delta = self.stats.nodes - self.synced_nodes;
        self.synced_nodes = self.stats.nodes;
        let total = counter.fetch_add(delta, Ordering::Relaxed) + delta;
        total > cap
    }

    /// Places tile `t`: one saturating masked subtract per lane word,
    /// then per decremented chord the same incremental-ingredient sweep
    /// as the unit core (distance, diameter, degrees, parity, hash),
    /// plus support retirement for chords whose residual hits zero.
    fn place(&mut self, t: u32) {
        if self.mode == SymmetryMode::Full {
            let top = *self.stab_stack.last().expect("stab stack seeded");
            let stab = self.sym.expect("tables exist in Full mode").tile_stab(t);
            self.stab_stack.push(top & stab);
        }
        let depth = self.chosen.len();
        if self.undo.len() == depth {
            self.undo.push(vec![0u64; self.lanes.lane_words]);
        }
        let (llo, lhi) = self.lanes.span(t);
        let diam = self.u.diam_chords();
        for w in llo as usize..lhi as usize {
            let before = self.residual.words()[w];
            let sub = self.residual.place_word(w, self.lanes.mask(t)[w]);
            self.undo[depth][w] = sub;
            let mut m = sub;
            while m != 0 {
                let p = m.trailing_zeros();
                let c = (w as u32) * LANES_PER_WORD + p / 2;
                let old = (before >> p & 0b11) as u32;
                self.rem_dist -= self.u.dist_of_pri(c) as u64;
                self.rem_diam -= (c < diam) as u64;
                let (a, b) = self.u.chord_ends_of_pri(c);
                for v in [a, b] {
                    let dv = &mut self.deg[v as usize];
                    if *dv & 1 == 1 {
                        self.odd -= 1;
                    } else {
                        self.odd += 1;
                    }
                    *dv -= 1;
                }
                if old == 1 {
                    self.support.remove(c);
                }
                if let Some(store) = self.store {
                    self.hash ^= store.chord_level_key(c, old);
                }
                m &= m - 1;
            }
        }
        self.chosen.push(t);
    }

    /// Reverts the most recent placement.
    fn unplace(&mut self) {
        let t = self.chosen.pop().expect("unplace without place");
        let depth = self.chosen.len();
        let (llo, lhi) = self.lanes.span(t);
        let diam = self.u.diam_chords();
        for w in llo as usize..lhi as usize {
            let sub = self.undo[depth][w];
            if sub == 0 {
                continue;
            }
            self.residual.unplace_word(w, sub);
            let after = self.residual.words()[w];
            let mut m = sub;
            while m != 0 {
                let p = m.trailing_zeros();
                let c = (w as u32) * LANES_PER_WORD + p / 2;
                // The restored value equals what `place` decremented from.
                let val = (after >> p & 0b11) as u32;
                self.rem_dist += self.u.dist_of_pri(c) as u64;
                self.rem_diam += (c < diam) as u64;
                let (a, b) = self.u.chord_ends_of_pri(c);
                for v in [a, b] {
                    let dv = &mut self.deg[v as usize];
                    if *dv & 1 == 1 {
                        self.odd -= 1;
                    } else {
                        self.odd += 1;
                    }
                    *dv += 1;
                }
                if val == 1 {
                    self.support.insert(c);
                }
                if let Some(store) = self.store {
                    self.hash ^= store.chord_level_key(c, val);
                }
                m &= m - 1;
            }
        }
        if self.mode == SymmetryMode::Full {
            self.stab_stack.pop();
        }
    }

    /// The cheap per-node lower bound — the unit core's capacity /
    /// diameter / vertex-degree trio with every ingredient weighted by
    /// residual multiplicity (a tile still covers each chord, and each
    /// vertex, at most once per placement).
    fn remaining_lb(&self) -> u64 {
        let n = self.u.ring().n() as u64;
        let mut lb = self.rem_dist.div_ceil(n).max(self.rem_diam);
        for &d in &self.deg {
            lb = lb.max((d as u64).div_ceil(2));
        }
        lb
    }

    /// The strong bound: the parity/T-join term (every tile changes each
    /// vertex's residual degree by an even amount, so the T-join
    /// argument reads the multiplicity-weighted degrees unchanged), then
    /// the diameter-slack dual over the **support** set — a feasible
    /// dual of the residual LP because each support chord carries ≥ 1
    /// demand, so the bound is valid (if not maximally tight) under
    /// multiplicities.
    fn strong_lb(&self, stop_above: u64) -> u64 {
        let parity = parity_join_bound_from_odd(self.u.ring().n(), self.rem_dist, self.odd);
        if parity > stop_above {
            return parity;
        }
        diameter_slack_bound(self.u, &self.support, self.rem_dist, stop_above).max(parity)
    }

    /// The memo key of the current residual vector: the packed lane
    /// words, zero-padded to the store's key width. No canonical mode —
    /// λ-fold keys are always raw.
    fn state_key(&self) -> [u64; KEY_WORDS] {
        let words = self.residual.words();
        debug_assert!(words.len() <= KEY_WORDS, "store.compatible caps chords at 128");
        let mut key = [0u64; KEY_WORDS];
        key[..words.len()].copy_from_slice(words);
        key
    }

    /// Steps A–I of one node, mirroring [`IterCore::enter_node`].
    fn enter_node(&mut self, check_memo: bool) -> Enter {
        if self.support.is_empty() {
            return Enter::Solved;
        }
        self.stats.nodes += 1;
        if self.stats.nodes > self.max_nodes {
            self.hit_limit = true;
            self.stop_cause = Some(Exhaustion::NodeBudget);
            return Enter::Abort;
        }
        if self.stats.nodes.is_multiple_of(1024) {
            if let Some(flag) = self.early_exit {
                if flag.load(Ordering::Relaxed) {
                    self.hit_limit = true;
                    return Enter::Abort;
                }
            }
            if self.sync_shared_nodes() {
                self.hit_limit = true;
                self.stop_cause = Some(Exhaustion::NodeBudget);
                return Enter::Abort;
            }
        }
        if self.stats.nodes.is_multiple_of(4096) {
            if let Some(flag) = self.cancel {
                if flag.load(Ordering::Relaxed) {
                    self.hit_limit = true;
                    self.stop_cause = Some(Exhaustion::Cancelled);
                    return Enter::Abort;
                }
            }
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.hit_limit = true;
                    self.stop_cause = Some(Exhaustion::Deadline);
                    return Enter::Abort;
                }
            }
        }
        let used = self.chosen.len() as u64;
        if used + self.remaining_lb() > self.budget as u64 {
            self.stats.pruned += 1;
            return Enter::Dead;
        }
        if self.strong {
            let slack = self.budget as u64 - used;
            if self.strong_lb(slack) > slack {
                self.stats.pruned += 1;
                return Enter::Dead;
            }
        }
        let mut key = [0u64; KEY_WORDS];
        let mut khash = 0u64;
        let mut memoable = false;
        if let Some(store) = self.store {
            let k = self.state_key();
            if check_memo {
                let slack = (self.budget as u64 - used) as u32;
                if let Some(owner) = store.dominated(self.hash, k, 2, slack) {
                    self.stats.memo_hits += 1;
                    if owner != self.gen {
                        self.stats.shared_hits += 1;
                    }
                    return Enter::Dead;
                }
            }
            key = k;
            khash = self.hash;
            memoable = true;
        }
        let branch = self.support.first_set().expect("unsatisfied demand exists");
        self.fill_candidates(branch);
        let depth = self.chosen.len();
        let f = &mut self.frames[depth];
        f.cursor = 0;
        f.key = key;
        f.hash = khash;
        f.memoable = memoable;
        Enter::Ready
    }

    /// Scores, sorts, dominance-filters, and orbit-filters the branch
    /// chord's candidates — [`IterCore::fill_candidates`] verbatim with
    /// the support set standing in for the uncovered set. Coverage
    /// counts *chords* with live residual (not residual units), matching
    /// the legacy multiplicity kernel's scoring.
    fn fill_candidates(&mut self, branch: u32) {
        let depth = self.chosen.len();
        while self.frames.len() <= depth {
            self.frames.push(Frame::default());
        }
        let u = self.u;
        let n = u.ring().n();
        let mut scored = std::mem::take(&mut self.frames[depth].scored);
        let mut cands = std::mem::take(&mut self.frames[depth].cands);
        scored.clear();
        cands.clear();
        for &t in u.candidates_pri(branch) {
            let (lo, hi) = u.tile_mask_span(t);
            let mut cov = 0u32;
            let mut useful = 0u32;
            for (wi, (a, b)) in u.tile_mask(t).words()[lo as usize..hi as usize]
                .iter()
                .zip(&self.support.words()[lo as usize..hi as usize])
                .enumerate()
            {
                let mut w = a & b;
                cov += w.count_ones();
                while w != 0 {
                    let i = (lo + wi as u32) * 64 + w.trailing_zeros();
                    useful += u.dist_of_pri(i);
                    w &= w - 1;
                }
            }
            if cov > 0 {
                let waste = n - useful.min(n);
                scored.push((t, cov, waste));
            }
        }
        scored.sort_by_key(|&(_, cov, waste)| (std::cmp::Reverse(cov), waste));

        // Dominance over live coverage: sound under multiplicities —
        // replacing a dominated tile with its dominator in any covering
        // multiset yields a covering of the same size.
        let c = scored.len();
        debug_assert!(c <= self.dom_masks.len(), "arena sized from max_candidates");
        if c > 1 {
            for (slot, &(t, _, _)) in scored.iter().enumerate() {
                let (lo, hi) = u.tile_mask_span(t);
                let (plo, phi) = self.dom_spans[slot];
                self.dom_masks[slot].clear_words(plo as usize, phi as usize);
                u.tile_mask(t).intersection_into_in(
                    &self.support,
                    &mut self.dom_masks[slot],
                    lo as usize,
                    hi as usize,
                );
                self.dom_spans[slot] = (lo, hi);
            }
            for (i, &(t, _, _)) in scored.iter().enumerate() {
                if i > 0 {
                    let (lo, hi) = u.tile_mask_span(t);
                    let (earlier, rest) = self.dom_masks.split_at(i);
                    let mask_i = &rest[0];
                    if earlier
                        .iter()
                        .any(|prior| mask_i.is_subset_of_in(prior, lo as usize, hi as usize))
                    {
                        self.stats.dominated += 1;
                        continue;
                    }
                }
                cands.push(t);
            }
        } else {
            cands.extend(scored.iter().map(|&(t, _, _)| t));
        }

        self.filter_symmetric(branch, &mut cands);
        let f = &mut self.frames[depth];
        f.scored = scored;
        f.cands = cands;
    }

    /// Sibling orbit filtering, pointwise only: `Root` at the empty
    /// prefix under the spec group, `Full` at every depth under the
    /// pointwise prefix stabilizer — the recursive reference's rule,
    /// with no setwise upgrade (that machinery is tied to canonical
    /// memo keys, which the lane core does not use).
    fn filter_symmetric(&mut self, branch: u32, cands: &mut Vec<u32>) {
        let Some(sym) = self.sym else { return };
        let group = match self.mode {
            SymmetryMode::Off => return,
            SymmetryMode::Root => {
                if !self.chosen.is_empty() {
                    return;
                }
                self.spec_group
            }
            SymmetryMode::Full => *self.stab_stack.last().expect("stab stack seeded"),
        };
        let filter = group & sym.chord_stab(branch);
        if self.chosen.is_empty() {
            self.stats.sym_factor = self.stats.sym_factor.max(filter.count_ones());
        }
        if filter & !1 == 0 {
            return;
        }
        if self.sym_seen.len() < sym.num_tiles() as usize {
            self.sym_seen.resize(sym.num_tiles() as usize, 0);
        }
        self.sym_stamp += 1;
        let stamp = self.sym_stamp;
        let sym_seen = &mut self.sym_seen;
        let stats = &mut self.stats;
        cands.retain(|&t| {
            let mut elements = filter & !1;
            while elements != 0 {
                let g = elements.trailing_zeros();
                elements &= elements - 1;
                let image = sym.tile_image(g, t);
                if image != t && sym_seen[image as usize] == stamp {
                    stats.sym_pruned += 1;
                    return false;
                }
            }
            sym_seen[t as usize] = stamp;
            true
        });
    }

    /// Drives the search from the current placement depth — the loop of
    /// [`IterCore::run`] minus canonical-mode bookkeeping (the memo's
    /// candidate pre-probe covers every non-root node, so only the
    /// subtree root checks the store at entry).
    fn run(&mut self) -> bool {
        let base = self.chosen.len();
        let mut entering = true;
        let mut check_memo = true;
        loop {
            if entering {
                match self.enter_node(check_memo) {
                    Enter::Solved => return true,
                    Enter::Abort => return false,
                    Enter::Dead => {
                        if self.chosen.len() == base {
                            return false;
                        }
                        self.unplace();
                        entering = false;
                        continue;
                    }
                    Enter::Ready => {}
                }
            }
            let depth = self.chosen.len();
            let f = &mut self.frames[depth];
            if f.cursor < f.cands.len() {
                let t = f.cands[f.cursor];
                f.cursor += 1;
                if self.skip_candidate(t) {
                    entering = false;
                    continue;
                }
                self.place(t);
                entering = true;
                check_memo = false;
            } else {
                if f.memoable {
                    let (hash, key) = (f.hash, f.key);
                    let rem = self.budget - depth as u32;
                    self.store
                        .expect("memoable implies a store")
                        .record(hash, key, 2, rem, self.gen);
                }
                if depth == base {
                    return false;
                }
                self.unplace();
                entering = false;
            }
        }
    }

    /// Probes the store for candidate `t`'s child residual vector before
    /// placing it — the lane twin of [`IterCore::skip_candidate`],
    /// simulating the masked subtract over a copy of the lane words.
    fn skip_candidate(&mut self, t: u32) -> bool {
        let Some(store) = self.store else {
            return false;
        };
        let mut key = self.state_key();
        let mut h = self.hash;
        let (llo, lhi) = self.lanes.span(t);
        for (w, kw) in key
            .iter_mut()
            .enumerate()
            .take(lhi as usize)
            .skip(llo as usize)
        {
            let r = *kw;
            let sub = (r | r >> 1) & self.lanes.mask(t)[w] & LANE_LOW;
            *kw = r - sub;
            let mut m = sub;
            while m != 0 {
                let p = m.trailing_zeros();
                let c = (w as u32) * LANES_PER_WORD + p / 2;
                h ^= store.chord_level_key(c, (r >> p & 0b11) as u32);
                m &= m - 1;
            }
        }
        if key == [0; KEY_WORDS] {
            return false;
        }
        let child_used = self.chosen.len() as u32 + 1;
        let slack = self.budget.saturating_sub(child_used);
        if let Some(owner) = store.dominated(h, key, 2, slack) {
            self.stats.memo_hits += 1;
            if owner != self.gen {
                self.stats.shared_hits += 1;
            }
            return true;
        }
        false
    }

    /// Final statistics (stamps the store's resident entry count).
    fn take_stats(&mut self) -> Stats {
        self.stats.memo_entries = self.store.map_or(0, |s| s.len());
        self.stats
    }
}

/// Budgeted iterative search over packed residual lanes — the λ-fold
/// engine path for demands ≤ 3. Same contract as [`search_iterative`].
pub(crate) fn search_lanes(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    lim: &RunLimits,
    sym: SymmetryMode,
    store: Option<&MemoStore>,
) -> (Outcome, Stats, Option<Exhaustion>) {
    let lanes = LaneTables::build(u);
    let mut core = LaneCore::new(u, spec, budget, lim, sym, store, &lanes);
    if core.run() {
        let chosen = core.chosen.clone();
        (Outcome::Feasible(chosen), core.take_stats(), None)
    } else if core.hit_limit {
        let cause = core.stop_cause;
        (Outcome::NodeLimit, core.take_stats(), cause)
    } else {
        (Outcome::Infeasible, core.take_stats(), None)
    }
}

/// The frontier-parallel driver over [`LaneCore`] workers — the λ-fold
/// member of the mirrored driver family ([`search_iterative_parallel`],
/// `bnb::search_parallel`): same expansion accounting, pre-spawn
/// guards, and stop-cause ranking, with one [`LaneTables`] shared by
/// every worker.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search_lanes_parallel(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    lim: &RunLimits,
    threads: usize,
    prefix_per_thread: usize,
    sym: SymmetryMode,
    store: Option<&MemoStore>,
) -> (Outcome, Stats, Option<Exhaustion>) {
    let max_nodes = lim.max_nodes;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let threads = pool.current_num_threads();
    let lanes = LaneTables::build(u);
    let mut root = LaneCore::new(u, spec, budget, lim, sym, store, &lanes);
    if root.support.is_empty() {
        return (Outcome::Feasible(Vec::new()), root.take_stats(), None);
    }
    let root_infeasible = root.remaining_lb() > budget as u64
        || (root.strong && root.strong_lb(budget as u64) > budget as u64);
    if root_infeasible {
        return (
            Outcome::Infeasible,
            Stats {
                nodes: 1,
                pruned: 1,
                sym_factor: 1,
                ..Stats::default()
            },
            None,
        );
    }

    // Breadth-first frontier expansion, mirroring the unit driver.
    let target = threads * prefix_per_thread.max(1);
    let mut frontier: VecDeque<Vec<u32>> = VecDeque::from([Vec::new()]);
    while frontier.len() < target {
        let Some(prefix) = frontier.pop_front() else {
            break;
        };
        if let Some(cause) = lim.stop_requested() {
            return (Outcome::NodeLimit, root.take_stats(), Some(cause));
        }
        for &t in &prefix {
            root.place(t);
        }
        let mut early: Option<Outcome> = None;
        if root.support.is_empty() {
            early = Some(Outcome::Feasible(root.chosen.clone()));
        } else {
            root.stats.nodes += 1;
            let prefix_slack = (budget as u64).saturating_sub(root.chosen.len() as u64);
            if root.stats.nodes > max_nodes {
                early = Some(Outcome::NodeLimit);
            } else if root.chosen.len() as u64 + root.remaining_lb() > budget as u64
                || (root.strong && root.strong_lb(prefix_slack) > prefix_slack)
            {
                root.stats.pruned += 1;
            } else {
                let branch = root.support.first_set().expect("unsatisfied");
                root.fill_candidates(branch);
                for &t in &root.frames[root.chosen.len()].cands {
                    let mut child = prefix.clone();
                    child.push(t);
                    frontier.push_back(child);
                }
            }
        }
        for _ in 0..prefix.len() {
            root.unplace();
        }
        if let Some(outcome) = early {
            let cause =
                matches!(outcome, Outcome::NodeLimit).then_some(Exhaustion::NodeBudget);
            return (outcome, root.take_stats(), cause);
        }
    }
    let expand_stats = root.take_stats();
    drop(root);
    if frontier.is_empty() {
        return (Outcome::Infeasible, expand_stats, None);
    }

    let found = AtomicBool::new(false);
    let limit_hit = AtomicBool::new(false);
    let stop_cause = AtomicU8::new(0);
    let nodes = AtomicU64::new(expand_stats.nodes);
    let pruned = AtomicU64::new(expand_stats.pruned);
    let dominated = AtomicU64::new(expand_stats.dominated);
    let sym_pruned = AtomicU64::new(expand_stats.sym_pruned);
    let canon_pruned = AtomicU64::new(expand_stats.canon_pruned);
    let memo_hits = AtomicU64::new(expand_stats.memo_hits);
    let shared_hits = AtomicU64::new(expand_stats.shared_hits);
    let sym_factor = AtomicU32::new(expand_stats.sym_factor);
    let solution = std::sync::Mutex::new(None::<Vec<u32>>);

    pool.scope(|scope| {
        for prefix in &frontier {
            let found = &found;
            let limit_hit = &limit_hit;
            let stop_cause = &stop_cause;
            let nodes = &nodes;
            let pruned = &pruned;
            let dominated = &dominated;
            let sym_pruned = &sym_pruned;
            let canon_pruned = &canon_pruned;
            let memo_hits = &memo_hits;
            let shared_hits = &shared_hits;
            let sym_factor = &sym_factor;
            let solution = &solution;
            let lanes = &lanes;
            scope.spawn(move |_| {
                if found.load(Ordering::Relaxed) {
                    return;
                }
                if nodes.load(Ordering::Relaxed) >= max_nodes {
                    limit_hit.store(true, Ordering::Relaxed);
                    stop_cause
                        .fetch_max(encode_cause(Exhaustion::NodeBudget), Ordering::Relaxed);
                    return;
                }
                let worker_lim = RunLimits {
                    max_nodes: u64::MAX,
                    deadline: lim.deadline,
                    cancel: lim.cancel.clone(),
                };
                let mut ctx = LaneCore::new(u, spec, budget, &worker_lim, sym, store, lanes);
                ctx.early_exit = Some(found);
                ctx.shared_nodes = Some((nodes, max_nodes));
                for &t in prefix {
                    ctx.place(t);
                }
                let ok = ctx.run();
                ctx.sync_shared_nodes();
                let st = ctx.take_stats();
                pruned.fetch_add(st.pruned, Ordering::Relaxed);
                dominated.fetch_add(st.dominated, Ordering::Relaxed);
                sym_pruned.fetch_add(st.sym_pruned, Ordering::Relaxed);
                canon_pruned.fetch_add(st.canon_pruned, Ordering::Relaxed);
                memo_hits.fetch_add(st.memo_hits, Ordering::Relaxed);
                shared_hits.fetch_add(st.shared_hits, Ordering::Relaxed);
                sym_factor.fetch_max(st.sym_factor, Ordering::Relaxed);
                if ok {
                    found.store(true, Ordering::Relaxed);
                    *solution.lock().expect("poison-free") = Some(ctx.chosen.clone());
                    return;
                }
                if ctx.hit_limit && !found.load(Ordering::Relaxed) {
                    limit_hit.store(true, Ordering::Relaxed);
                    if let Some(cause) = ctx.stop_cause {
                        stop_cause.fetch_max(encode_cause(cause), Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let stats = Stats {
        nodes: nodes.load(Ordering::Relaxed),
        pruned: pruned.load(Ordering::Relaxed),
        dominated: dominated.load(Ordering::Relaxed),
        sym_pruned: sym_pruned.load(Ordering::Relaxed),
        canon_pruned: canon_pruned.load(Ordering::Relaxed),
        memo_hits: memo_hits.load(Ordering::Relaxed),
        shared_hits: shared_hits.load(Ordering::Relaxed),
        memo_entries: store.map_or(0, |s| s.len()),
        sym_factor: sym_factor.load(Ordering::Relaxed),
        partition_probes: 0,
    };
    let sol = solution.lock().expect("poison-free").take();
    match sol {
        Some(sol) => (Outcome::Feasible(sol), stats, None),
        None if limit_hit.load(Ordering::Relaxed) => (
            Outcome::NodeLimit,
            stats,
            Some(decode_cause(stop_cause.load(Ordering::Relaxed))),
        ),
        None => (Outcome::Infeasible, stats, None),
    }
}
