//! Local-search improvement of DRC coverings.
//!
//! Heuristic coverings (greedy, or structured constructions under edits)
//! often carry slack: tiles whose every chord is also covered elsewhere,
//! or tile *pairs* whose combined unique contribution fits inside one
//! replacement tile. [`improve_covering`] removes both kinds of slack
//! with deterministic, validity-preserving moves:
//!
//! 1. **drop** — delete any tile all of whose chords are covered ≥ 2×;
//! 2. **merge (2→1)** — replace a tile pair by a single universe tile
//!    covering everything the pair uniquely covered.
//!
//! Each move strictly shrinks the covering, so the loop terminates; the
//! result is "2-minimal" (no single drop or pair merge applies). Used as
//! a polish pass over `greedy::greedy_cover` in the baselines of
//! experiment E5, and as the improvement step of the general-instance
//! experiments.

use crate::TileUniverse;
use cyclecover_ring::Tile;

/// Coverage counts per *priority* chord index for a tile multiset.
fn coverage(u: &TileUniverse, tiles: &[Tile]) -> Vec<u32> {
    let mut cov = vec![0u32; u.num_chords() as usize];
    for t in tiles {
        for c in chord_indices(u, t) {
            cov[c as usize] += 1;
        }
    }
    cov
}

/// Priority chord indices of one tile: the precomputed list when the tile
/// is in the universe (the common case), recomputed otherwise.
fn chord_indices(u: &TileUniverse, t: &Tile) -> Vec<u32> {
    if let Some(i) = u.index_of(t) {
        return u.tile_chords(i).to_vec();
    }
    let n = u.ring().n() as usize;
    t.chord_pairs()
        .map(|(a, b)| {
            let dense = cyclecover_graph::Edge::new(a, b).dense_index(n);
            u.pri_of_dense(dense as u32)
        })
        .collect()
}

/// Applies drop and merge moves to a fixpoint; returns the improved
/// covering. The input must cover `K_n` (asserted in debug builds);
/// the output covers it too, with `output.len() ≤ input.len()`.
pub fn improve_covering(u: &TileUniverse, mut tiles: Vec<Tile>) -> Vec<Tile> {
    loop {
        if drop_redundant(u, &mut tiles) {
            continue;
        }
        if merge_pairs(u, &mut tiles) {
            continue;
        }
        return tiles;
    }
}

/// Removes tiles whose chords are all covered at least twice. Returns
/// whether anything was dropped.
fn drop_redundant(u: &TileUniverse, tiles: &mut Vec<Tile>) -> bool {
    let mut cov = coverage(u, tiles);
    let mut dropped = false;
    let mut i = 0;
    while i < tiles.len() {
        let idx = chord_indices(u, &tiles[i]);
        if idx.iter().all(|&c| cov[c as usize] >= 2) {
            for &c in &idx {
                cov[c as usize] -= 1;
            }
            tiles.swap_remove(i);
            dropped = true;
        } else {
            i += 1;
        }
    }
    dropped
}

/// Tries every tile pair: if some universe tile covers the union of the
/// pair's *uniquely*-covered chords, swap it in. First improvement wins.
fn merge_pairs(u: &TileUniverse, tiles: &mut Vec<Tile>) -> bool {
    let cov = coverage(u, tiles);
    let per_tile: Vec<Vec<u32>> = tiles.iter().map(|t| chord_indices(u, t)).collect();
    let m = u.num_chords() as usize;
    for i in 0..tiles.len() {
        for j in (i + 1)..tiles.len() {
            // Chords that would become uncovered if both i and j left.
            let mut lost = vec![0u32; m];
            for &c in per_tile[i].iter().chain(&per_tile[j]) {
                lost[c as usize] += 1;
            }
            let must: Vec<u32> = (0..m as u32)
                .filter(|&c| lost[c as usize] > 0 && cov[c as usize] == lost[c as usize])
                .collect();
            if must.is_empty() {
                // The pair is jointly redundant; drop both.
                let (hi, lo) = (j, i);
                tiles.swap_remove(hi);
                tiles.swap_remove(lo);
                return true;
            }
            // A replacement must cover all `must` chords: scan only the
            // candidates of the rarest chord, checked against the
            // precomputed tile masks.
            let pivot = must
                .iter()
                .copied()
                .min_by_key(|&c| u.candidates_pri(c).len())
                .expect("must is nonempty");
            for &cand in u.candidates_pri(pivot) {
                let mask = u.tile_mask(cand);
                if must.iter().all(|&c| mask.contains(c)) {
                    // Swap in the replacement.
                    let replacement = u.tile(cand).clone();
                    let (hi, lo) = (j, i);
                    tiles.swap_remove(hi);
                    tiles.swap_remove(lo);
                    tiles.push(replacement);
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy;
    use cyclecover_ring::Ring;

    fn covers_all(u: &TileUniverse, tiles: &[Tile]) -> bool {
        coverage(u, tiles).iter().all(|&c| c >= 1)
    }

    #[test]
    fn drops_duplicate_tiles() {
        let u = TileUniverse::new(Ring::new(7), 4);
        let mut tiles = greedy::greedy_cover(&u);
        let len = tiles.len();
        // Duplicate the whole covering: everything becomes redundant.
        tiles.extend(tiles.clone());
        let improved = improve_covering(&u, tiles);
        assert!(improved.len() <= len);
        assert!(covers_all(&u, &improved));
    }

    #[test]
    fn improvement_never_invalidates() {
        for n in [6u32, 8, 9, 11, 13] {
            let u = TileUniverse::new(Ring::new(n), 4);
            let tiles = greedy::greedy_cover(&u);
            assert!(covers_all(&u, &tiles), "greedy covers, n={n}");
            let before = tiles.len();
            let improved = improve_covering(&u, tiles);
            assert!(covers_all(&u, &improved), "n={n}: improvement broke coverage");
            assert!(improved.len() <= before, "n={n}");
        }
    }

    #[test]
    fn improved_greedy_tracks_optimum() {
        // Greedy + improvement should land within ~30% of ρ(n) on small n.
        for n in [7u32, 9, 11] {
            let u = TileUniverse::new(Ring::new(n), 4);
            let improved = improve_covering(&u, greedy::greedy_cover(&u));
            let rho = crate::lower_bound::rho_formula(n);
            assert!(
                (improved.len() as u64) <= rho + rho.div_ceil(3) + 1,
                "n={n}: improved {} vs rho {rho}",
                improved.len()
            );
        }
    }

    #[test]
    fn already_optimal_coverings_untouched_in_size() {
        // An exact partition (odd n) has no redundancy: nothing drops.
        let n = 9u32;
        let u = TileUniverse::new(Ring::new(n), 4);
        let cover = cyclecover_ringless_optimal(n);
        let before = cover.len();
        let improved = improve_covering(&u, cover);
        assert_eq!(improved.len(), before);
        assert!(covers_all(&u, &improved));
    }

    /// The odd-construction tiles, rebuilt through the universe's ring
    /// (avoids a dev-dependency on cyclecover-core: the odd covering for
    /// n=9 is small enough to hand-roll via greedy + known size).
    fn cyclecover_ringless_optimal(n: u32) -> Vec<Tile> {
        use crate::api::{engine_by_name, Optimality, Problem, SolveRequest};
        let problem = Problem::new(
            TileUniverse::new(Ring::new(n), 4),
            crate::bnb::CoverSpec::complete(n),
        );
        let sol = engine_by_name("bitset").expect("registered engine").solve(
            &problem,
            &SolveRequest::within_budget(crate::lower_bound::rho_formula(n) as u32)
                .with_max_nodes(50_000_000),
        );
        match sol.optimality() {
            Optimality::Feasible => sol.covering().expect("feasible").to_vec(),
            other => panic!("optimal covering search failed: {other:?}"),
        }
    }
}
