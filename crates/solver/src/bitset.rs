//! Word-packed chord sets: the data layout of the exact solver's hot path.
//!
//! A [`ChordSet`] is a fixed-width bitset over the `n(n−1)/2` chord slots
//! of a ring instance, packed into `u64` words. Coverage bookkeeping in the
//! branch & bound — "which requests are still unsatisfied", "what does this
//! tile newly cover", "is this candidate's contribution a subset of that
//! one's" — collapses to a handful of AND/ANDNOT/OR/POPCNT instructions per
//! tile instead of a per-chord loop of ring arithmetic.
//!
//! For every `n ≤ 16` the whole set fits in two words; one cache line
//! (8 words) covers rings up to `n = 32`.

use std::fmt;

/// A fixed-width bitset over chord slots.
///
/// Width is set at construction and is an invariant: binary operations
/// require both operands to have the same width (debug-asserted). Bits at
/// positions `>= len()` are never set.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ChordSet {
    words: Vec<u64>,
    nbits: u32,
}

impl ChordSet {
    /// The empty set over `nbits` slots.
    pub fn empty(nbits: u32) -> Self {
        ChordSet {
            words: vec![0; nbits.div_ceil(64) as usize],
            nbits,
        }
    }

    /// The full set `{0, …, nbits−1}`.
    pub fn full(nbits: u32) -> Self {
        let mut s = Self::empty(nbits);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = (i as u32) * 64;
            let in_word = nbits.saturating_sub(lo).min(64);
            *w = match in_word {
                0 => 0,
                64 => u64::MAX,
                k => (1u64 << k) - 1,
            };
        }
        s
    }

    /// Number of slots (bit width).
    #[inline]
    pub fn len(&self) -> u32 {
        self.nbits
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bit `i`.
    #[inline]
    pub fn insert(&mut self, i: u32) {
        debug_assert!(i < self.nbits, "bit {i} out of width {}", self.nbits);
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&mut self, i: u32) {
        debug_assert!(i < self.nbits, "bit {i} out of width {}", self.nbits);
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        debug_assert!(i < self.nbits, "bit {i} out of width {}", self.nbits);
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Lowest set bit, if any.
    #[inline]
    pub fn first_set(&self) -> Option<u32> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some((i as u32) * 64 + w.trailing_zeros());
            }
        }
        None
    }

    /// `self ∪= other`.
    #[inline]
    pub fn union_with(&mut self, other: &ChordSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self ∩= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &ChordSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self −= other` (ANDNOT).
    #[inline]
    pub fn subtract(&mut self, other: &ChordSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Writes `self ∩ other` into `out` (no allocation).
    #[inline]
    pub fn intersection_into(&self, other: &ChordSet, out: &mut ChordSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        debug_assert_eq!(self.nbits, out.nbits);
        for ((o, a), b) in out.words.iter_mut().zip(&self.words).zip(&other.words) {
            *o = a & b;
        }
    }

    /// `|self ∩ other|` without materializing the intersection.
    #[inline]
    pub fn intersection_count(&self, other: &ChordSet) -> u32 {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Whether the sets share any bit.
    #[inline]
    pub fn intersects(&self, other: &ChordSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(&self, other: &ChordSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Whether `self ⊆ other`, examining only the word range
    /// `lo..hi` — sound whenever the caller knows every set bit of
    /// `self` lies inside that range (e.g. a tile mask restricted to the
    /// words the tile's chords occupy). The search's dominance tests use
    /// this so a subset check touches the one or two words a candidate's
    /// coverage can live in instead of the full set width.
    #[inline]
    pub fn is_subset_of_in(&self, other: &ChordSet, lo: usize, hi: usize) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        debug_assert!(hi <= self.words.len());
        debug_assert!(
            self.words[..lo].iter().all(|&w| w == 0)
                && self.words[hi..].iter().all(|&w| w == 0),
            "set bits outside the advertised word span"
        );
        self.words[lo..hi]
            .iter()
            .zip(&other.words[lo..hi])
            .all(|(a, b)| a & !b == 0)
    }

    /// Writes `self ∩ other` into `out`, touching only the word range
    /// `lo..hi`; words of `out` outside the range are zeroed cheaply via
    /// the caller's guarantee that they already are (debug-asserted).
    /// Companion of [`ChordSet::is_subset_of_in`] for masks whose set
    /// bits all live inside the range.
    #[inline]
    pub fn intersection_into_in(&self, other: &ChordSet, out: &mut ChordSet, lo: usize, hi: usize) {
        debug_assert_eq!(self.nbits, other.nbits);
        debug_assert_eq!(self.nbits, out.nbits);
        debug_assert!(
            self.words[..lo].iter().all(|&w| w == 0)
                && self.words[hi..].iter().all(|&w| w == 0),
            "set bits outside the advertised word span"
        );
        debug_assert!(
            out.words[..lo].iter().all(|&w| w == 0)
                && out.words[hi..].iter().all(|&w| w == 0),
            "stale scratch bits outside the advertised word span"
        );
        for ((o, a), b) in out.words[lo..hi]
            .iter_mut()
            .zip(&self.words[lo..hi])
            .zip(&other.words[lo..hi])
        {
            *o = a & b;
        }
    }

    /// Clears all bits (width unchanged).
    #[inline]
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Clears only the words `lo..hi` — the cheap way to retire a scratch
    /// mask whose set bits were confined to that span.
    #[inline]
    pub fn clear_words(&mut self, lo: usize, hi: usize) {
        debug_assert!(hi <= self.words.len());
        self.words[lo..hi].iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates set bits in increasing order.
    pub fn iter(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The raw words (low bit of word 0 is slot 0).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for ChordSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChordSet{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}/{}", self.nbits)
    }
}

/// Low bit of every 2-bit lane of a [`LaneSet`] word.
pub const LANE_LOW: u64 = 0x5555_5555_5555_5555;

/// Lanes per `u64` word of a [`LaneSet`].
pub const LANES_PER_WORD: u32 = 32;

/// Word-packed per-chord multiplicities: the λ-fold sibling of
/// [`ChordSet`].
///
/// Each chord owns a 2-bit lane (32 lanes per word) holding its
/// *residual* demand — how many more times it must be covered — so
/// λ ≤ 3 specs fit without inter-lane carries. Placing a tile is one
/// masked subtract per word: lanes that are covered by the tile *and*
/// still nonzero each lose exactly 1, which cannot borrow into the
/// neighbouring lane because every decremented lane is ≥ 1. "Fully
/// covered" is the lane-wise compare against zero, and residual-demand
/// popcounts (how many covered lanes are still live) fall out of the
/// same mask that drives the subtract.
///
/// Word `w` lane `i` (chord `32·w + i`) occupies bits `2i` (low) and
/// `2i + 1` (high); [`LANE_LOW`] selects the low bit of every lane.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LaneSet {
    words: Vec<u64>,
    nlanes: u32,
}

impl LaneSet {
    /// All-zero residuals over `nlanes` chord slots.
    pub fn zero(nlanes: u32) -> Self {
        LaneSet {
            words: vec![0; nlanes.div_ceil(LANES_PER_WORD) as usize],
            nlanes,
        }
    }

    /// Packs per-chord residual counts (each ≤ 3) into lanes.
    pub fn from_counts(counts: &[u32]) -> Self {
        let mut s = Self::zero(counts.len() as u32);
        for (i, &v) in counts.iter().enumerate() {
            s.set(i as u32, v);
        }
        s
    }

    /// Number of lanes (chord slots).
    #[inline]
    pub fn len(&self) -> u32 {
        self.nlanes
    }

    /// Whether the set has zero lanes (an empty chord universe).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nlanes == 0
    }

    /// Whether every lane is zero — the "fully covered" test.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Lane `i`'s residual value.
    #[inline]
    pub fn get(&self, i: u32) -> u32 {
        debug_assert!(i < self.nlanes, "lane {i} out of width {}", self.nlanes);
        (self.words[(i / LANES_PER_WORD) as usize] >> (2 * (i % LANES_PER_WORD)) & 0b11) as u32
    }

    /// Sets lane `i` to `v` (≤ 3).
    #[inline]
    pub fn set(&mut self, i: u32, v: u32) {
        debug_assert!(i < self.nlanes, "lane {i} out of width {}", self.nlanes);
        debug_assert!(v <= 3, "residual {v} does not fit a 2-bit lane");
        let w = &mut self.words[(i / LANES_PER_WORD) as usize];
        let sh = 2 * (i % LANES_PER_WORD);
        *w = (*w & !(0b11u64 << sh)) | ((v as u64) << sh);
    }

    /// Total residual demand: the sum of every lane.
    #[inline]
    pub fn total(&self) -> u32 {
        self.words
            .iter()
            .map(|&w| (w & LANE_LOW).count_ones() + 2 * (w >> 1 & LANE_LOW).count_ones())
            .sum()
    }

    /// Number of lanes still nonzero — the residual-demand popcount.
    #[inline]
    pub fn count_nonzero(&self) -> u32 {
        self.words
            .iter()
            .map(|&w| ((w | w >> 1) & LANE_LOW).count_ones())
            .sum()
    }

    /// Lowest nonzero lane, if any.
    #[inline]
    pub fn first_nonzero(&self) -> Option<u32> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some((i as u32) * LANES_PER_WORD + w.trailing_zeros() / 2);
            }
        }
        None
    }

    /// Places a tile on word `wi`: every lane selected by `mask_low`
    /// (low-bit positions, as a tile's lane mask) that is still nonzero
    /// is decremented by exactly 1 — the saturating masked subtract.
    /// Returns the subtracted word (one [`LANE_LOW`] bit per decremented
    /// lane), which the caller stores for [`LaneSet::unplace_word`] and
    /// whose popcount is the tile's new coverage in this word.
    #[inline]
    pub fn place_word(&mut self, wi: usize, mask_low: u64) -> u64 {
        debug_assert_eq!(mask_low & !LANE_LOW, 0, "mask must use low-bit lanes");
        let r = self.words[wi];
        // Every subtracted lane is ≥ 1, so the word-wide subtract cannot
        // borrow across a lane boundary.
        let sub = (r | r >> 1) & mask_low;
        self.words[wi] = r - sub;
        sub
    }

    /// Reverts a [`LaneSet::place_word`] with the word it returned. The
    /// add cannot carry across lanes: each re-incremented lane was
    /// decremented from ≥ 1 by the matching place.
    #[inline]
    pub fn unplace_word(&mut self, wi: usize, sub: u64) {
        debug_assert_eq!(sub & !LANE_LOW, 0, "undo word must use low-bit lanes");
        debug_assert_eq!(
            self.words[wi] & self.words[wi] >> 1 & sub,
            0,
            "re-incrementing a saturated lane"
        );
        self.words[wi] += sub;
    }

    /// The raw lane words (lane 0 of word 0 is chord 0).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for LaneSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LaneSet{{")?;
        let mut first = true;
        for i in 0..self.nlanes {
            let v = self.get(i);
            if v > 0 {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{i}:{v}")?;
                first = false;
            }
        }
        write!(f, "}}/{}", self.nlanes)
    }
}

/// Iterator over the set bits of a [`ChordSet`].
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some((self.word_idx as u32) * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Word-boundary widths: 63 (one partial word), 64 (one exact word),
    /// 65 (straddling two words) — exactly the widths where masking bugs
    /// live. 65 is also a real instance width: `n = 12` has 66 chords.
    #[test]
    fn width_boundaries_full_and_count() {
        for nbits in [1u32, 63, 64, 65, 66, 127, 128, 129] {
            let full = ChordSet::full(nbits);
            assert_eq!(full.count(), nbits, "width {nbits}");
            assert_eq!(full.iter().count() as u32, nbits, "width {nbits}");
            assert_eq!(full.first_set(), Some(0), "width {nbits}");
            // The top word carries no stray bits above `nbits`.
            let bits_in_top = nbits - 64 * (nbits / 64 - (nbits % 64 == 0) as u32);
            let top = *full.words().last().unwrap();
            assert_eq!(top.count_ones(), bits_in_top, "width {nbits} top word");
            let mut emptied = full.clone();
            emptied.subtract(&full);
            assert!(emptied.is_empty(), "width {nbits}");
        }
    }

    #[test]
    fn insert_remove_contains_across_boundary() {
        for nbits in [63u32, 64, 65] {
            let mut s = ChordSet::empty(nbits);
            for i in [0, nbits / 2, nbits - 1] {
                assert!(!s.contains(i));
                s.insert(i);
                assert!(s.contains(i), "width {nbits} bit {i}");
            }
            assert_eq!(s.count(), 3);
            s.remove(nbits - 1);
            assert!(!s.contains(nbits - 1));
            assert_eq!(s.count(), 2);
        }
    }

    #[test]
    fn word_ops_at_width_65() {
        // Bits 63 and 64 are adjacent slots in different words.
        let mut a = ChordSet::empty(65);
        a.insert(63);
        a.insert(64);
        let mut b = ChordSet::empty(65);
        b.insert(64);
        b.insert(0);

        assert_eq!(a.intersection_count(&b), 1);
        assert!(a.intersects(&b));
        assert!(!b.is_subset_of(&a));

        let mut inter = ChordSet::empty(65);
        a.intersection_into(&b, &mut inter);
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![64]);
        assert!(inter.is_subset_of(&a) && inter.is_subset_of(&b));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![0, 63, 64]);

        let mut d = u.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![63]);
    }

    #[test]
    fn first_set_scans_past_zero_words() {
        let mut s = ChordSet::empty(129);
        assert_eq!(s.first_set(), None);
        s.insert(128);
        assert_eq!(s.first_set(), Some(128));
        s.insert(70);
        assert_eq!(s.first_set(), Some(70));
        s.insert(3);
        assert_eq!(s.first_set(), Some(3));
    }

    #[test]
    fn subset_reflexive_and_strictness() {
        let mut a = ChordSet::empty(64);
        a.insert(5);
        a.insert(60);
        let mut b = a.clone();
        assert!(a.is_subset_of(&b) && b.is_subset_of(&a), "reflexive");
        b.insert(7);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a), "strict superset detected");
    }

    #[test]
    fn iter_matches_contains() {
        let mut s = ChordSet::empty(100);
        let picks = [0u32, 1, 31, 32, 63, 64, 65, 98, 99];
        for &i in &picks {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), picks.to_vec());
        assert_eq!(s.count() as usize, picks.len());
    }

    /// Lane-boundary widths: 31/32/33 straddle the first word edge
    /// (32 lanes per word), 63/64/65 the second — the λ-fold analogue
    /// of the bitset width-boundary suite. 66 is a real instance width
    /// (`n = 12` has 66 chords).
    #[test]
    fn lane_width_boundaries() {
        for nlanes in [1u32, 31, 32, 33, 63, 64, 65, 66] {
            let counts: Vec<u32> = (0..nlanes).map(|i| i % 4).collect();
            let s = LaneSet::from_counts(&counts);
            assert_eq!(s.len(), nlanes, "width {nlanes}");
            for i in 0..nlanes {
                assert_eq!(s.get(i), i % 4, "width {nlanes} lane {i}");
            }
            assert_eq!(s.total(), counts.iter().sum::<u32>(), "width {nlanes}");
            assert_eq!(
                s.count_nonzero(),
                counts.iter().filter(|&&v| v > 0).count() as u32,
                "width {nlanes}"
            );
            assert_eq!(
                s.first_nonzero(),
                counts.iter().position(|&v| v > 0).map(|p| p as u32),
                "width {nlanes}"
            );
            assert_eq!(s.is_zero(), nlanes == 1, "width {nlanes}");
        }
    }

    #[test]
    fn lane_set_get_roundtrip() {
        let mut s = LaneSet::zero(65);
        for (i, v) in [(0u32, 3u32), (31, 1), (32, 2), (33, 3), (63, 2), (64, 1)] {
            s.set(i, v);
            assert_eq!(s.get(i), v, "lane {i}");
        }
        // Neighbouring lanes are untouched by a 2-bit write.
        assert_eq!(s.get(1), 0);
        assert_eq!(s.get(30), 0);
        assert_eq!(s.get(34), 0);
        s.set(33, 0);
        assert_eq!(s.get(33), 0);
        assert_eq!(s.get(32), 2, "clearing a lane leaves its neighbours");
        assert_eq!(s.get(34), 0);
    }

    #[test]
    fn place_word_decrements_only_live_masked_lanes() {
        // Lanes 0..4 hold 3, 2, 1, 0; the mask covers lanes 0, 2, 3.
        let mut s = LaneSet::from_counts(&[3, 2, 1, 0]);
        let mask = 1u64 | 1 << 4 | 1 << 6;
        let sub = s.place_word(0, mask);
        // Lane 3 is already zero: saturation keeps it out of the
        // subtract, so new coverage is the two live masked lanes.
        assert_eq!(sub, 1u64 | 1 << 4);
        assert_eq!(sub.count_ones(), 2, "coverage popcount");
        assert_eq!(
            (s.get(0), s.get(1), s.get(2), s.get(3)),
            (2, 2, 0, 0),
            "masked live lanes lost exactly 1; others untouched"
        );
        s.unplace_word(0, sub);
        assert_eq!((s.get(0), s.get(1), s.get(2), s.get(3)), (3, 2, 1, 0));
    }

    #[test]
    fn place_word_never_borrows_across_lanes() {
        // A full word of residual-1 lanes: subtracting the whole mask
        // must zero every lane without any lane borrowing from its
        // neighbour (which would show up as 0b11 garbage).
        let mut s = LaneSet::from_counts(&[1; 32]);
        let sub = s.place_word(0, LANE_LOW);
        assert_eq!(sub, LANE_LOW);
        assert!(s.is_zero());
        s.unplace_word(0, sub);
        assert_eq!(s.total(), 32);

        // Mixed values 1..=3 across a word edge at lane 32.
        let counts: Vec<u32> = (0..40).map(|i| 1 + i % 3).collect();
        let mut m = LaneSet::from_counts(&counts);
        let before = m.clone();
        let s0 = m.place_word(0, LANE_LOW);
        let s1 = m.place_word(1, LANE_LOW & ((1u64 << 16) - 1));
        for (i, &v) in counts.iter().enumerate() {
            assert_eq!(m.get(i as u32), v - 1, "lane {i}");
        }
        m.unplace_word(1, s1);
        m.unplace_word(0, s0);
        assert_eq!(m, before);
    }

    #[test]
    fn lane_debug_render() {
        let s = LaneSet::from_counts(&[0, 2, 0, 3]);
        assert_eq!(format!("{s:?}"), "LaneSet{1:2,3:3}/4");
    }
}
