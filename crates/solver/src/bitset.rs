//! Word-packed chord sets: the data layout of the exact solver's hot path.
//!
//! A [`ChordSet`] is a fixed-width bitset over the `n(n−1)/2` chord slots
//! of a ring instance, packed into `u64` words. Coverage bookkeeping in the
//! branch & bound — "which requests are still unsatisfied", "what does this
//! tile newly cover", "is this candidate's contribution a subset of that
//! one's" — collapses to a handful of AND/ANDNOT/OR/POPCNT instructions per
//! tile instead of a per-chord loop of ring arithmetic.
//!
//! For every `n ≤ 16` the whole set fits in two words; one cache line
//! (8 words) covers rings up to `n = 32`.

use std::fmt;

/// A fixed-width bitset over chord slots.
///
/// Width is set at construction and is an invariant: binary operations
/// require both operands to have the same width (debug-asserted). Bits at
/// positions `>= len()` are never set.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ChordSet {
    words: Vec<u64>,
    nbits: u32,
}

impl ChordSet {
    /// The empty set over `nbits` slots.
    pub fn empty(nbits: u32) -> Self {
        ChordSet {
            words: vec![0; nbits.div_ceil(64) as usize],
            nbits,
        }
    }

    /// The full set `{0, …, nbits−1}`.
    pub fn full(nbits: u32) -> Self {
        let mut s = Self::empty(nbits);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = (i as u32) * 64;
            let in_word = nbits.saturating_sub(lo).min(64);
            *w = match in_word {
                0 => 0,
                64 => u64::MAX,
                k => (1u64 << k) - 1,
            };
        }
        s
    }

    /// Number of slots (bit width).
    #[inline]
    pub fn len(&self) -> u32 {
        self.nbits
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bit `i`.
    #[inline]
    pub fn insert(&mut self, i: u32) {
        debug_assert!(i < self.nbits, "bit {i} out of width {}", self.nbits);
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&mut self, i: u32) {
        debug_assert!(i < self.nbits, "bit {i} out of width {}", self.nbits);
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        debug_assert!(i < self.nbits, "bit {i} out of width {}", self.nbits);
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Lowest set bit, if any.
    #[inline]
    pub fn first_set(&self) -> Option<u32> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some((i as u32) * 64 + w.trailing_zeros());
            }
        }
        None
    }

    /// `self ∪= other`.
    #[inline]
    pub fn union_with(&mut self, other: &ChordSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self ∩= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &ChordSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self −= other` (ANDNOT).
    #[inline]
    pub fn subtract(&mut self, other: &ChordSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Writes `self ∩ other` into `out` (no allocation).
    #[inline]
    pub fn intersection_into(&self, other: &ChordSet, out: &mut ChordSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        debug_assert_eq!(self.nbits, out.nbits);
        for ((o, a), b) in out.words.iter_mut().zip(&self.words).zip(&other.words) {
            *o = a & b;
        }
    }

    /// `|self ∩ other|` without materializing the intersection.
    #[inline]
    pub fn intersection_count(&self, other: &ChordSet) -> u32 {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Whether the sets share any bit.
    #[inline]
    pub fn intersects(&self, other: &ChordSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(&self, other: &ChordSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Whether `self ⊆ other`, examining only the word range
    /// `lo..hi` — sound whenever the caller knows every set bit of
    /// `self` lies inside that range (e.g. a tile mask restricted to the
    /// words the tile's chords occupy). The search's dominance tests use
    /// this so a subset check touches the one or two words a candidate's
    /// coverage can live in instead of the full set width.
    #[inline]
    pub fn is_subset_of_in(&self, other: &ChordSet, lo: usize, hi: usize) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        debug_assert!(hi <= self.words.len());
        debug_assert!(
            self.words[..lo].iter().all(|&w| w == 0)
                && self.words[hi..].iter().all(|&w| w == 0),
            "set bits outside the advertised word span"
        );
        self.words[lo..hi]
            .iter()
            .zip(&other.words[lo..hi])
            .all(|(a, b)| a & !b == 0)
    }

    /// Writes `self ∩ other` into `out`, touching only the word range
    /// `lo..hi`; words of `out` outside the range are zeroed cheaply via
    /// the caller's guarantee that they already are (debug-asserted).
    /// Companion of [`ChordSet::is_subset_of_in`] for masks whose set
    /// bits all live inside the range.
    #[inline]
    pub fn intersection_into_in(&self, other: &ChordSet, out: &mut ChordSet, lo: usize, hi: usize) {
        debug_assert_eq!(self.nbits, other.nbits);
        debug_assert_eq!(self.nbits, out.nbits);
        debug_assert!(
            self.words[..lo].iter().all(|&w| w == 0)
                && self.words[hi..].iter().all(|&w| w == 0),
            "set bits outside the advertised word span"
        );
        debug_assert!(
            out.words[..lo].iter().all(|&w| w == 0)
                && out.words[hi..].iter().all(|&w| w == 0),
            "stale scratch bits outside the advertised word span"
        );
        for ((o, a), b) in out.words[lo..hi]
            .iter_mut()
            .zip(&self.words[lo..hi])
            .zip(&other.words[lo..hi])
        {
            *o = a & b;
        }
    }

    /// Clears all bits (width unchanged).
    #[inline]
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Clears only the words `lo..hi` — the cheap way to retire a scratch
    /// mask whose set bits were confined to that span.
    #[inline]
    pub fn clear_words(&mut self, lo: usize, hi: usize) {
        debug_assert!(hi <= self.words.len());
        self.words[lo..hi].iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates set bits in increasing order.
    pub fn iter(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The raw words (low bit of word 0 is slot 0).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for ChordSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChordSet{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}/{}", self.nbits)
    }
}

/// Iterator over the set bits of a [`ChordSet`].
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some((self.word_idx as u32) * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Word-boundary widths: 63 (one partial word), 64 (one exact word),
    /// 65 (straddling two words) — exactly the widths where masking bugs
    /// live. 65 is also a real instance width: `n = 12` has 66 chords.
    #[test]
    fn width_boundaries_full_and_count() {
        for nbits in [1u32, 63, 64, 65, 66, 127, 128, 129] {
            let full = ChordSet::full(nbits);
            assert_eq!(full.count(), nbits, "width {nbits}");
            assert_eq!(full.iter().count() as u32, nbits, "width {nbits}");
            assert_eq!(full.first_set(), Some(0), "width {nbits}");
            // The top word carries no stray bits above `nbits`.
            let bits_in_top = nbits - 64 * (nbits / 64 - (nbits % 64 == 0) as u32);
            let top = *full.words().last().unwrap();
            assert_eq!(top.count_ones(), bits_in_top, "width {nbits} top word");
            let mut emptied = full.clone();
            emptied.subtract(&full);
            assert!(emptied.is_empty(), "width {nbits}");
        }
    }

    #[test]
    fn insert_remove_contains_across_boundary() {
        for nbits in [63u32, 64, 65] {
            let mut s = ChordSet::empty(nbits);
            for i in [0, nbits / 2, nbits - 1] {
                assert!(!s.contains(i));
                s.insert(i);
                assert!(s.contains(i), "width {nbits} bit {i}");
            }
            assert_eq!(s.count(), 3);
            s.remove(nbits - 1);
            assert!(!s.contains(nbits - 1));
            assert_eq!(s.count(), 2);
        }
    }

    #[test]
    fn word_ops_at_width_65() {
        // Bits 63 and 64 are adjacent slots in different words.
        let mut a = ChordSet::empty(65);
        a.insert(63);
        a.insert(64);
        let mut b = ChordSet::empty(65);
        b.insert(64);
        b.insert(0);

        assert_eq!(a.intersection_count(&b), 1);
        assert!(a.intersects(&b));
        assert!(!b.is_subset_of(&a));

        let mut inter = ChordSet::empty(65);
        a.intersection_into(&b, &mut inter);
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![64]);
        assert!(inter.is_subset_of(&a) && inter.is_subset_of(&b));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![0, 63, 64]);

        let mut d = u.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![63]);
    }

    #[test]
    fn first_set_scans_past_zero_words() {
        let mut s = ChordSet::empty(129);
        assert_eq!(s.first_set(), None);
        s.insert(128);
        assert_eq!(s.first_set(), Some(128));
        s.insert(70);
        assert_eq!(s.first_set(), Some(70));
        s.insert(3);
        assert_eq!(s.first_set(), Some(3));
    }

    #[test]
    fn subset_reflexive_and_strictness() {
        let mut a = ChordSet::empty(64);
        a.insert(5);
        a.insert(60);
        let mut b = a.clone();
        assert!(a.is_subset_of(&b) && b.is_subset_of(&a), "reflexive");
        b.insert(7);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a), "strict superset detected");
    }

    #[test]
    fn iter_matches_contains() {
        let mut s = ChordSet::empty(100);
        let picks = [0u32, 1, 31, 32, 63, 64, 65, 98, 99];
        for &i in &picks {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), picks.to_vec());
        assert_eq!(s.count() as usize, picks.len());
    }
}
