//! Simulated annealing over tile coverings — the metaheuristic
//! counterpart to the deterministic [`crate::improve`] pass.
//!
//! Moves: remove a random tile and greedily repair coverage; the move is
//! accepted if it shrinks the covering, or with the Metropolis
//! probability `exp(−Δ/T)` otherwise, under a geometric cooling
//! schedule. Seeded RNG makes runs reproducible; the incumbent is the
//! output, so the result is never worse than the input.
//!
//! Annealing matters where the greedy/improve pair stalls: its uphill
//! moves escape the "2-minimal" local optima `improve` terminates in.
//! On small rings it reliably reaches `ρ(n)` from a greedy start
//! (tested); it is also the only solver here that works on *any*
//! chord-universe subset, so the λ-fold and general-instance experiments
//! use it as a second opinion.

use crate::TileUniverse;
use cyclecover_ring::Tile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Annealing parameters.
#[derive(Clone, Copy, Debug)]
pub struct AnnealParams {
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Iterations.
    pub iterations: u32,
    /// Initial temperature, in units of "cycles of covering size".
    pub t0: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            seed: 2001,
            iterations: 4_000,
            t0: 2.0,
            cooling: 0.999,
        }
    }
}

/// Anneals `tiles` (must cover `K_n`) toward a smaller covering.
/// Returns the best covering found; never larger than the input.
pub fn anneal_covering(u: &TileUniverse, tiles: Vec<Tile>, params: AnnealParams) -> Vec<Tile> {
    let ring = u.ring();
    let n = ring.n() as usize;
    let pairs = n * (n - 1) / 2;
    let dense = |t: &Tile| -> Vec<usize> {
        t.chords(ring)
            .iter()
            .map(|c| c.to_edge().dense_index(n))
            .collect()
    };

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut current = tiles;
    let mut best = current.clone();
    let mut temp = params.t0;

    for _ in 0..params.iterations {
        if current.len() <= 1 {
            break;
        }
        // Remove one or two random tiles (two enables direct 2→1
        // merges), then repair coverage greedily with candidate tiles.
        let mut trial = current.clone();
        let kicks = if trial.len() >= 2 && rng.gen_bool(0.5) { 2 } else { 1 };
        for _ in 0..kicks {
            let victim = rng.gen_range(0..trial.len());
            trial.swap_remove(victim);
        }

        let mut cov = vec![0u32; pairs];
        for t in &trial {
            for c in dense(t) {
                cov[c] += 1;
            }
        }
        let mut holes: Vec<usize> = (0..pairs).filter(|&c| cov[c] == 0).collect();
        // Repair: for each hole pick the candidate covering the most holes.
        while let Some(&h) = holes.first() {
            let e = cyclecover_graph::Edge::from_dense_index(h, n);
            let cand = u
                .candidates(e)
                .iter()
                .max_by_key(|&&i| {
                    dense(u.tile(i))
                        .iter()
                        .filter(|&&c| cov[c] == 0)
                        .count()
                })
                .copied()
                .expect("every chord lies on some tile");
            for c in dense(u.tile(cand)) {
                cov[c] += 1;
            }
            trial.push(u.tile(cand).clone());
            holes.retain(|&c| cov[c] == 0);
        }

        let delta = trial.len() as f64 - current.len() as f64;
        let accept = delta <= 0.0 || rng.gen_bool((-delta / temp).exp().clamp(0.0, 1.0));
        if accept {
            current = trial;
            if current.len() < best.len() {
                best = current.clone();
            }
        }
        temp *= params.cooling;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy, improve, lower_bound};
    use cyclecover_ring::Ring;

    fn covers_all(u: &TileUniverse, tiles: &[Tile]) -> bool {
        let ring = u.ring();
        let n = ring.n() as usize;
        let mut cov = vec![0u32; n * (n - 1) / 2];
        for t in tiles {
            for c in t.chords(ring) {
                cov[c.to_edge().dense_index(n)] += 1;
            }
        }
        cov.iter().all(|&c| c >= 1)
    }

    #[test]
    fn anneal_preserves_coverage_and_never_grows() {
        for n in [7u32, 9, 11] {
            let u = TileUniverse::new(Ring::new(n), 4);
            let start = greedy::greedy_cover(&u);
            let size0 = start.len();
            let out = anneal_covering(&u, start, AnnealParams::default());
            assert!(covers_all(&u, &out), "n={n}");
            assert!(out.len() <= size0, "n={n}");
        }
    }

    #[test]
    fn anneal_reaches_optimum_on_small_rings() {
        for n in [5u32, 7, 9] {
            let u = TileUniverse::new(Ring::new(n), 4);
            let start = greedy::greedy_cover(&u);
            let out = anneal_covering(
                &u,
                start,
                AnnealParams {
                    iterations: 8_000,
                    ..AnnealParams::default()
                },
            );
            let rho = lower_bound::rho_formula(n);
            assert_eq!(out.len() as u64, rho, "n={n}");
        }
    }

    #[test]
    fn anneal_is_deterministic_given_seed() {
        let u = TileUniverse::new(Ring::new(10), 4);
        let start = greedy::greedy_cover(&u);
        let a = anneal_covering(&u, start.clone(), AnnealParams::default());
        let b = anneal_covering(&u, start, AnnealParams::default());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn anneal_plus_improve_compose() {
        let n = 11u32;
        let u = TileUniverse::new(Ring::new(n), 4);
        let start = greedy::greedy_cover(&u);
        let annealed = anneal_covering(&u, start, AnnealParams::default());
        let polished = improve::improve_covering(&u, annealed.clone());
        assert!(polished.len() <= annealed.len());
        assert!(covers_all(&u, &polished));
        // Within one cycle of optimum on this size.
        assert!(polished.len() as u64 <= lower_bound::rho_formula(n) + 1);
    }
}
