//! # cyclecover-solver
//!
//! Exact and heuristic solvers for minimum DRC cycle coverings, behind a
//! single typed request/response boundary.
//!
//! ## The solver surface: [`api`]
//!
//! Every workload — certifying the paper's `ρ(n)` formulas, λ-fold and
//! partial instances, heuristic baselines — is one question: *cover this
//! demand spec on `C_n` within this budget, and certify the answer*. The
//! [`api`] module types that question end to end:
//!
//! * [`api::Problem`] — ring + [`bnb::CoverSpec`] + precomputed
//!   [`TileUniverse`];
//! * [`api::SolveRequest`] — objective (`FindOptimal` /
//!   `WithinBudget(k)` / `ProveInfeasible(k)`), resource limits (node
//!   budget, wall-clock deadline, shareable [`api::CancelToken`]), and an
//!   execution policy (sequential / frontier-parallel / auto);
//! * [`api::Solution`] — the covering plus an [`api::Optimality`]
//!   certificate stating exactly what was proved, with unified stats;
//! * [`api::Engine`] — the trait every solver implements, with a
//!   name-keyed registry ([`api::engines`] / [`api::engine_by_name`]):
//!   `bitset`, `bitset-parallel`, `legacy`, `dlx`, `partition`,
//!   `greedy`, `greedy-improve`, `anneal`.
//!
//! ```
//! use cyclecover_solver::api::{engine_by_name, Optimality, Problem, SolveRequest};
//!
//! // Certify the paper's worked example: rho(4) = 3.
//! let problem = Problem::complete(4);
//! let engine = engine_by_name("bitset").unwrap();
//!
//! let optimal = engine.solve(&problem, &SolveRequest::find_optimal());
//! assert_eq!(optimal.size(), Some(3));
//! assert!(matches!(optimal.optimality(), Optimality::Optimal { .. }));
//!
//! let refuted = engine.solve(&problem, &SolveRequest::prove_infeasible(2));
//! assert!(matches!(refuted.optimality(), Optimality::Infeasible));
//! ```
//!
//! ## Substrate modules
//!
//! The engines are thin drivers over these primitives (all public — the
//! API layer composes, it does not hide):
//!
//! * [`TileUniverse`] — enumeration of all DRC-routable cycles (winding
//!   tiles) of a ring, with per-chord candidate indices and precomputed
//!   per-tile metadata (chord index lists, chord bitmasks, load, wasted
//!   capacity, diameter counts) in a branch-priority chord order, plus
//!   lazily-built dihedral action tables ([`DihedralTables`]: `D_n`
//!   permutations of chords and tiles, stabilizer bitmasks, orbit
//!   representatives) backing the [`bnb::SymmetryMode`] search reduction;
//! * [`bitset`] — [`bitset::ChordSet`], the word-packed chord sets the
//!   exact search's coverage bookkeeping runs on;
//! * [`lower_bound`] — the capacity lower bound
//!   `ρ(n) ≥ ⌈Σ dist(u,v) / n⌉` (and its arbitrary-demand form
//!   [`lower_bound::weighted_demand_bound`]), the diameter bound, and
//!   the search-state prefix bounds: the parity/T-join bound
//!   ([`lower_bound::parity_join_bound`] — Theorem 2's `+1` derived at
//!   the root of capacity-tight even probes) and the diameter-slack
//!   greedy dual ([`lower_bound::diameter_slack_bound`]);
//! * [`bnb`] — the branch & bound searches: unit-demand specs run the
//!   iterative allocation-free core (explicit search stack over reused
//!   arenas, incremental bound ingredients, and the residual-state
//!   dominance memo — Zobrist-keyed, byte-budgeted via
//!   [`bnb::MemoConfig`], with canonical dihedral state keying under
//!   `SymmetryMode::Full`); the recursive bitset path survives as the
//!   differential reference ([`bnb::budget_search_reference`]) and the
//!   legacy multiplicity kernel serves λ-fold specs. The old free
//!   functions remain as deprecated wrappers over the engine internals;
//! * [`dlx`] — the slack-budgeted exact-cover kernel behind the
//!   `partition` and `dlx` engines (MRV chord selection, exact-waste
//!   candidate filtering against the budget's slack
//!   `budget·n − λ·Σd(e)`, full-load collapse at zero slack), which the
//!   sequential `bitset` dispatch reroutes low-slack λ-fold probes
//!   through; plus the generic Dancing-Links substrate (Knuth's
//!   Algorithm X) it grew out of;
//! * [`greedy`], [`improve`], [`anneal`] — the heuristic pipeline:
//!   lazy-bucket max-coverage greedy, drop/merge local search, simulated
//!   annealing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod api;
pub mod bitset;
pub mod bnb;
pub mod dlx;
pub mod greedy;
pub mod improve;
pub mod lower_bound;
mod memo;
mod search_core;
mod tiles;

pub use tiles::{DihedralTables, TileUniverse};
