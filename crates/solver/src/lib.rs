//! # cyclecover-solver
//!
//! Exact and heuristic solvers for minimum DRC cycle coverings, used to
//! *certify* the paper's theorems on small instances and as baselines:
//!
//! * [`TileUniverse`] — enumeration of all DRC-routable cycles (winding
//!   tiles) of a ring, with per-chord candidate indices and precomputed
//!   per-tile metadata (chord index lists, chord bitmasks, load, wasted
//!   capacity, diameter counts) in a branch-priority chord order;
//! * [`bitset`] — [`bitset::ChordSet`], the word-packed chord sets the
//!   exact search's coverage bookkeeping runs on;
//! * [`lower_bound`] — the capacity lower bound
//!   `ρ(n) ≥ ⌈Σ dist(u,v) / n⌉` (and its arbitrary-demand form
//!   [`lower_bound::weighted_demand_bound`]) plus the diameter bound
//!   (≤ 1 diameter chord per cycle);
//! * [`dlx`] — a generic Dancing-Links exact-cover engine (Knuth's
//!   Algorithm X), used for exact *partitions* (the odd case of the paper is
//!   a partition) and for design-theory substrates;
//! * [`bnb`] — depth-first branch & bound minimum covering with capacity
//!   and diameter pruning: finds optimal coverings and proves infeasibility
//!   of smaller budgets (the lower-bound certificates of `EXPERIMENTS.md`).
//!   Unit-demand specs run on the bitset kernel (popcount scoring, subset
//!   dominance pruning); λ-fold specs keep the multiplicity-counter path.
//!   [`bnb::cover_spec_within_budget_parallel`] drains a breadth-first
//!   frontier of search prefixes on a work-sharing `rayon` scope;
//! * [`greedy`] — a greedy set-cover style baseline.
//!
//! ```
//! use cyclecover_ring::Ring;
//! use cyclecover_solver::{bnb, TileUniverse};
//!
//! // Certify the paper's worked example: rho(4) = 3.
//! let universe = TileUniverse::new(Ring::new(4), 4);
//! let (_, optimum, _) = bnb::solve_optimal(&universe, 1_000_000).unwrap();
//! assert_eq!(optimum, 3);
//! assert_eq!(bnb::prove_infeasible(&universe, 2, 1_000_000), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod bitset;
pub mod bnb;
pub mod dlx;
pub mod greedy;
pub mod improve;
pub mod lower_bound;
mod tiles;

pub use tiles::TileUniverse;
