//! Branch & bound minimum DRC covering.
//!
//! Exact search over a [`TileUniverse`]: find a covering of the demanded
//! requests by at most `budget` tiles, or prove none exists. Iterated over
//! increasing budgets this computes `ρ(n)` exactly — the optimality
//! certificates of experiment E4 — and, with a [`CoverSpec`], the λ-fold
//! and partial-instance variants of experiment E8.
//!
//! Search design:
//! * branch on the unsatisfied chord with the highest priority (diameter
//!   chords first, then by decreasing distance) — these are the scarcest
//!   resources (a DRC cycle can carry at most one diameter);
//! * candidates at a branch are the tiles covering that chord, ordered by
//!   how many still-unsatisfied chords they cover (ties: less wasted
//!   capacity);
//! * prune with `used + max(⌈remaining_dist / n⌉, remaining_diameters) >
//!   budget` — the capacity and diameter lower bounds restricted to the
//!   unsatisfied demand;
//! * optional node limit for bounded experiments;
//! * [`cover_within_budget_parallel`] splits the root branch across
//!   `crossbeam` scoped threads (one per root candidate chunk), sharing an
//!   early-exit flag — near-linear speedups on infeasibility proofs.

use crate::lower_bound::combinatorial_lower_bound;
use crate::TileUniverse;
use cyclecover_graph::Edge;
use cyclecover_ring::Tile;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What must be covered: per-request multiplicities.
#[derive(Clone, Debug)]
pub struct CoverSpec {
    /// `demand[e.dense_index(n)]` = how many times request `e` must be
    /// covered (0 = don't care).
    pub demand: Vec<u32>,
}

impl CoverSpec {
    /// The standard spec: every request of `K_n` once.
    pub fn complete(n: u32) -> Self {
        CoverSpec {
            demand: vec![1; n as usize * (n as usize - 1) / 2],
        }
    }

    /// λ-fold: every request `lambda` times.
    pub fn lambda_fold(n: u32, lambda: u32) -> Self {
        CoverSpec {
            demand: vec![lambda; n as usize * (n as usize - 1) / 2],
        }
    }

    /// Cover exactly the given requests once (a partial instance).
    pub fn subset(n: u32, requests: &[Edge]) -> Self {
        let mut demand = vec![0; n as usize * (n as usize - 1) / 2];
        for e in requests {
            demand[e.dense_index(n as usize)] = 1;
        }
        CoverSpec { demand }
    }

    /// Total residual demand weighted by request distance — the numerator
    /// of the capacity bound for this spec.
    pub fn capacity_lower_bound(&self, ring: cyclecover_ring::Ring) -> u64 {
        let n = ring.n();
        let total: u64 = self
            .demand
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let e = Edge::from_dense_index(i, n as usize);
                d as u64 * ring.distance(e.u(), e.v()) as u64
            })
            .sum();
        total.div_ceil(n as u64)
    }
}

/// Result of a bounded covering search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A covering within budget was found (tile indices into the universe).
    Feasible(Vec<u32>),
    /// Exhaustively proved: no covering within the budget exists.
    Infeasible,
    /// Search aborted at the node limit — no conclusion.
    NodeLimit,
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Search-tree nodes expanded.
    pub nodes: u64,
    /// Nodes cut by the capacity/diameter bound.
    pub pruned: u64,
}

struct SearchCtx<'a> {
    u: &'a TileUniverse,
    n: u32,
    /// chord dense index -> cover multiplicity so far
    covered: Vec<u32>,
    /// chord dense index -> required multiplicity
    demand: Vec<u32>,
    /// chord dense index -> ring distance
    dist: Vec<u32>,
    /// chords ordered by branching priority
    order: Vec<u32>,
    /// number of (chord, multiplicity) units still unsatisfied
    unsatisfied: u64,
    rem_dist: u64,
    rem_diam: u64,
    budget: u32,
    max_nodes: u64,
    stats: Stats,
    chosen: Vec<u32>,
    hit_limit: bool,
    early_exit: Option<&'a AtomicBool>,
}

impl<'a> SearchCtx<'a> {
    fn new(u: &'a TileUniverse, spec: &CoverSpec, budget: u32, max_nodes: u64) -> Self {
        let ring = u.ring();
        let n = ring.n();
        let m = n as usize * (n as usize - 1) / 2;
        assert_eq!(spec.demand.len(), m, "spec size mismatch");
        let mut dist = vec![0u32; m];
        let mut rem_dist = 0u64;
        let mut rem_diam = 0u64;
        let mut unsatisfied = 0u64;
        for (i, slot) in dist.iter_mut().enumerate() {
            let e = Edge::from_dense_index(i, n as usize);
            let d = ring.distance(e.u(), e.v());
            *slot = d;
            let need = spec.demand[i] as u64;
            unsatisfied += need;
            rem_dist += need * d as u64;
            if ring.is_diameter_class(d) {
                rem_diam += need;
            }
        }
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(dist[i as usize]));
        SearchCtx {
            u,
            n,
            covered: vec![0; m],
            demand: spec.demand.clone(),
            dist,
            order,
            unsatisfied,
            rem_dist,
            rem_diam,
            budget,
            max_nodes,
            stats: Stats::default(),
            chosen: Vec::new(),
            hit_limit: false,
            early_exit: None,
        }
    }

    fn place(&mut self, tile_idx: u32) {
        let ring = self.u.ring();
        self.chosen.push(tile_idx);
        for c in self.u.tile(tile_idx).chords(ring) {
            let i = c.to_edge().dense_index(self.n as usize);
            if self.covered[i] < self.demand[i] {
                self.unsatisfied -= 1;
                self.rem_dist -= self.dist[i] as u64;
                if ring.is_diameter_class(self.dist[i]) {
                    self.rem_diam -= 1;
                }
            }
            self.covered[i] += 1;
        }
    }

    fn unplace(&mut self, tile_idx: u32) {
        let ring = self.u.ring();
        debug_assert_eq!(self.chosen.last(), Some(&tile_idx));
        self.chosen.pop();
        for c in self.u.tile(tile_idx).chords(ring) {
            let i = c.to_edge().dense_index(self.n as usize);
            self.covered[i] -= 1;
            if self.covered[i] < self.demand[i] {
                self.unsatisfied += 1;
                self.rem_dist += self.dist[i] as u64;
                if ring.is_diameter_class(self.dist[i]) {
                    self.rem_diam += 1;
                }
            }
        }
    }

    /// Lower bound on additional tiles needed for the unsatisfied demand.
    fn remaining_lb(&self) -> u64 {
        let cap = self.rem_dist.div_ceil(self.n as u64);
        cap.max(self.rem_diam)
    }

    fn new_coverage(&self, tile_idx: u32) -> (u32, u32) {
        // (units of unsatisfied demand covered, wasted capacity)
        let ring = self.u.ring();
        let mut new_cov = 0;
        let mut useful = 0u32;
        for c in self.u.tile(tile_idx).chords(ring) {
            let i = c.to_edge().dense_index(self.n as usize);
            if self.covered[i] < self.demand[i] {
                new_cov += 1;
                useful += self.dist[i];
            }
        }
        (new_cov, self.n - useful.min(self.n))
    }

    fn branch_chord(&self) -> Option<u32> {
        self.order
            .iter()
            .copied()
            .find(|&i| self.covered[i as usize] < self.demand[i as usize])
    }

    fn sorted_candidates(&self, branch: u32) -> Vec<u32> {
        let e = Edge::from_dense_index(branch as usize, self.n as usize);
        let mut cands: Vec<(u32, (std::cmp::Reverse<u32>, u32))> = self
            .u
            .candidates(e)
            .iter()
            .map(|&t| {
                let (cov, waste) = self.new_coverage(t);
                (t, (std::cmp::Reverse(cov), waste))
            })
            .collect();
        cands.sort_by_key(|&(_, key)| key);
        cands.into_iter().map(|(t, _)| t).collect()
    }

    fn dfs(&mut self) -> bool {
        if self.unsatisfied == 0 {
            return true;
        }
        self.stats.nodes += 1;
        if self.stats.nodes > self.max_nodes {
            self.hit_limit = true;
            return false;
        }
        if let Some(flag) = self.early_exit {
            if self.stats.nodes.is_multiple_of(1024) && flag.load(Ordering::Relaxed) {
                self.hit_limit = true;
                return false;
            }
        }
        let used = self.chosen.len() as u64;
        if used + self.remaining_lb() > self.budget as u64 {
            self.stats.pruned += 1;
            return false;
        }
        let branch = self.branch_chord().expect("unsatisfied demand exists");
        // Sorting candidates pays near the root but dominates runtime deep
        // in the tree; below depth 4 use the static universe order.
        if self.chosen.len() <= 4 {
            for t in self.sorted_candidates(branch) {
                self.place(t);
                if self.dfs() {
                    return true;
                }
                self.unplace(t);
                if self.hit_limit {
                    return false;
                }
            }
        } else {
            let e = Edge::from_dense_index(branch as usize, self.n as usize);
            let cands: Vec<u32> = self.u.candidates(e).to_vec();
            for t in cands {
                if self.new_coverage(t).0 == 0 {
                    continue;
                }
                self.place(t);
                if self.dfs() {
                    return true;
                }
                self.unplace(t);
                if self.hit_limit {
                    return false;
                }
            }
        }
        false
    }
}

/// Searches for a covering of `spec` using at most `budget` tiles from the
/// universe. Exhaustive up to `max_nodes` search nodes.
pub fn cover_spec_within_budget(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    max_nodes: u64,
) -> (Outcome, Stats) {
    let mut ctx = SearchCtx::new(u, spec, budget, max_nodes);
    if ctx.dfs() {
        (Outcome::Feasible(ctx.chosen.clone()), ctx.stats)
    } else if ctx.hit_limit {
        (Outcome::NodeLimit, ctx.stats)
    } else {
        (Outcome::Infeasible, ctx.stats)
    }
}

/// [`cover_spec_within_budget`] for the standard all-of-`K_n` spec.
pub fn cover_within_budget(u: &TileUniverse, budget: u32, max_nodes: u64) -> (Outcome, Stats) {
    cover_spec_within_budget(u, &CoverSpec::complete(u.ring().n()), budget, max_nodes)
}

/// Parallel variant: root candidates are explored by `crossbeam` scoped
/// threads sharing an early-exit flag. Semantics match
/// [`cover_spec_within_budget`] (up to which feasible solution is found).
pub fn cover_spec_within_budget_parallel(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    max_nodes: u64,
    threads: usize,
) -> (Outcome, Stats) {
    let root = SearchCtx::new(u, spec, budget, max_nodes);
    let Some(branch) = root.branch_chord() else {
        return (Outcome::Feasible(Vec::new()), root.stats);
    };
    // Quick root prune.
    if root.remaining_lb() > budget as u64 {
        return (
            Outcome::Infeasible,
            Stats {
                nodes: 0,
                pruned: 1,
            },
        );
    }
    let cands = root.sorted_candidates(branch);
    drop(root);

    let found = AtomicBool::new(false);
    let limit_hit = AtomicBool::new(false);
    let nodes = AtomicU64::new(0);
    let pruned = AtomicU64::new(0);
    let solution = std::sync::Mutex::new(None::<Vec<u32>>);

    let threads = threads.max(1);
    crossbeam::scope(|scope| {
        for chunk in cands.chunks(cands.len().div_ceil(threads)) {
            let found = &found;
            let limit_hit = &limit_hit;
            let nodes = &nodes;
            let pruned = &pruned;
            let solution = &solution;
            scope.spawn(move |_| {
                for &t in chunk {
                    if found.load(Ordering::Relaxed) {
                        return;
                    }
                    // Global node budget: each sub-search gets what's left
                    // (two threads may overshoot by at most 2x, bounded).
                    let spent = nodes.load(Ordering::Relaxed);
                    if spent >= max_nodes {
                        limit_hit.store(true, Ordering::Relaxed);
                        return;
                    }
                    let mut ctx = SearchCtx::new(u, spec, budget, max_nodes - spent);
                    ctx.early_exit = Some(found);
                    ctx.place(t);
                    let ok = ctx.dfs();
                    nodes.fetch_add(ctx.stats.nodes, Ordering::Relaxed);
                    pruned.fetch_add(ctx.stats.pruned, Ordering::Relaxed);
                    if ok {
                        found.store(true, Ordering::Relaxed);
                        *solution.lock().expect("poison-free") = Some(ctx.chosen.clone());
                        return;
                    }
                    if ctx.hit_limit && !found.load(Ordering::Relaxed) {
                        limit_hit.store(true, Ordering::Relaxed);
                    }
                }
            });
        }
    })
    .expect("solver threads never panic");

    let stats = Stats {
        nodes: nodes.load(Ordering::Relaxed),
        pruned: pruned.load(Ordering::Relaxed),
    };
    let sol = solution.lock().expect("poison-free").take();
    match sol {
        Some(sol) => (Outcome::Feasible(sol), stats),
        None if limit_hit.load(Ordering::Relaxed) => (Outcome::NodeLimit, stats),
        None => (Outcome::Infeasible, stats),
    }
}

/// Optimal covering by iterative deepening from the combinatorial lower
/// bound. Returns the tiles and the optimum, or `None` if the node limit
/// was hit before a conclusion.
pub fn solve_optimal(u: &TileUniverse, max_nodes: u64) -> Option<(Vec<Tile>, u32, Stats)> {
    solve_optimal_spec(u, &CoverSpec::complete(u.ring().n()), max_nodes)
}

/// Optimal covering for an arbitrary [`CoverSpec`], by iterative deepening
/// from the spec's capacity bound.
pub fn solve_optimal_spec(
    u: &TileUniverse,
    spec: &CoverSpec,
    max_nodes: u64,
) -> Option<(Vec<Tile>, u32, Stats)> {
    let n = u.ring().n();
    let base = spec.capacity_lower_bound(u.ring());
    let complete = CoverSpec::complete(n);
    let mut budget = if spec.demand == complete.demand {
        combinatorial_lower_bound(n).max(base) as u32
    } else {
        base as u32
    };
    let mut total = Stats::default();
    loop {
        let (outcome, stats) = cover_spec_within_budget(u, spec, budget, max_nodes);
        total.nodes += stats.nodes;
        total.pruned += stats.pruned;
        match outcome {
            Outcome::Feasible(idx) => {
                let tiles = idx.into_iter().map(|i| u.tile(i).clone()).collect();
                return Some((tiles, budget, total));
            }
            Outcome::Infeasible => budget += 1,
            Outcome::NodeLimit => return None,
        }
    }
}

/// Certifies that no covering with at most `budget` tiles exists.
/// Returns `Some(true)` for a completed infeasibility proof, `Some(false)`
/// if a covering was found, `None` if the node limit was hit.
pub fn prove_infeasible(u: &TileUniverse, budget: u32, max_nodes: u64) -> Option<bool> {
    match cover_within_budget(u, budget, max_nodes).0 {
        Outcome::Infeasible => Some(true),
        Outcome::Feasible(_) => Some(false),
        Outcome::NodeLimit => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound::rho_formula;
    use cyclecover_graph::EdgeMultiset;
    use cyclecover_ring::Ring;

    fn assert_valid_cover(u: &TileUniverse, tiles: &[Tile], lambda: u32) {
        let ring = u.ring();
        let n = ring.n() as usize;
        let mut cover = EdgeMultiset::new(n);
        for t in tiles {
            for c in t.chords(ring) {
                cover.insert(c.to_edge());
            }
        }
        assert!(cover.covers_complete(lambda), "not a {lambda}-covering");
    }

    #[test]
    fn optimal_k4_matches_paper_example() {
        let u = TileUniverse::new(Ring::new(4), 4);
        let (tiles, opt, _) = solve_optimal(&u, 1_000_000).expect("solved");
        assert_eq!(opt, 3, "rho(4) = 3 per the paper's example");
        assert_valid_cover(&u, &tiles, 1);
    }

    #[test]
    fn optimal_small_odd_matches_theorem1() {
        for n in [3u32, 5, 7, 9] {
            let u = TileUniverse::new(Ring::new(n), n as usize);
            let (tiles, opt, _) = solve_optimal(&u, 50_000_000).expect("solved");
            assert_eq!(opt as u64, rho_formula(n), "rho({n})");
            assert_valid_cover(&u, &tiles, 1);
        }
    }

    #[test]
    fn optimal_small_even_matches_theorem2() {
        for n in [6u32, 8] {
            let u = TileUniverse::new(Ring::new(n), n as usize);
            let (tiles, opt, _) = solve_optimal(&u, 50_000_000).expect("solved");
            assert_eq!(opt as u64, rho_formula(n), "rho({n})");
            assert_valid_cover(&u, &tiles, 1);
        }
    }

    /// The `+1` of Theorem 2 for even `p`: n = 8 (p = 4) — capacity bound
    /// says 8, the paper says 9; certify 8 is infeasible.
    #[test]
    fn n8_infeasible_at_capacity_bound() {
        let u = TileUniverse::new(Ring::new(8), 8);
        assert_eq!(prove_infeasible(&u, 8, 50_000_000), Some(true));
        assert_eq!(prove_infeasible(&u, 9, 50_000_000), Some(false));
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        for n in [6u32, 7, 8] {
            let u = TileUniverse::new(Ring::new(n), n as usize);
            let spec = CoverSpec::complete(n);
            let budget = rho_formula(n) as u32;
            let (seq, _) = cover_spec_within_budget(&u, &spec, budget - 1, 100_000_000);
            let (par, _) =
                cover_spec_within_budget_parallel(&u, &spec, budget - 1, 100_000_000, 4);
            assert_eq!(seq, Outcome::Infeasible, "n={n}");
            assert_eq!(par, Outcome::Infeasible, "n={n}");
            let (seq_ok, _) = cover_spec_within_budget(&u, &spec, budget, 100_000_000);
            let (par_ok, _) =
                cover_spec_within_budget_parallel(&u, &spec, budget, 100_000_000, 4);
            assert!(matches!(seq_ok, Outcome::Feasible(_)), "n={n}");
            assert!(matches!(par_ok, Outcome::Feasible(_)), "n={n}");
        }
    }

    /// λ-fold: rho_2(6) — the capacity bound is 9 (vs 2·rho(6) = 10);
    /// the solver settles what copy-concatenation cannot.
    #[test]
    fn lambda_fold_small() {
        let n = 6u32;
        let u = TileUniverse::new(Ring::new(n), n as usize);
        let spec = CoverSpec::lambda_fold(n, 2);
        let (tiles, opt, _) = solve_optimal_spec(&u, &spec, 200_000_000).expect("solved");
        assert_valid_cover(&u, &tiles, 2);
        assert!(opt >= spec.capacity_lower_bound(Ring::new(n)) as u32);
        assert!(opt <= 2 * rho_formula(n) as u32);
    }

    /// Subset spec: cover only a star's edges (plus whatever tiles bring).
    #[test]
    fn subset_spec_star() {
        let n = 7u32;
        let u = TileUniverse::new(Ring::new(n), 4);
        let star: Vec<Edge> = (1..n).map(|v| Edge::new(0, v)).collect();
        let spec = CoverSpec::subset(n, &star);
        let (tiles, opt, _) = solve_optimal_spec(&u, &spec, 100_000_000).expect("solved");
        // Each tile uses at most 2 chords at vertex 0: >= ceil(6/2) = 3.
        assert!(opt >= 3, "opt={opt}");
        let ring = Ring::new(n);
        let mut cov = EdgeMultiset::new(n as usize);
        for t in &tiles {
            for c in t.chords(ring) {
                cov.insert(c.to_edge());
            }
        }
        for e in &star {
            assert!(cov.count(*e) >= 1);
        }
    }

    #[test]
    fn node_limit_reports_inconclusive() {
        // n = 8 at budget 8: the capacity bound allows it (8 = ⌈p²/2⌉), so
        // infeasibility needs real search — a 10-node limit must trip.
        let u = TileUniverse::new(Ring::new(8), 8);
        let (outcome, stats) = cover_within_budget(&u, 8, 10);
        assert_eq!(outcome, Outcome::NodeLimit);
        assert!(stats.nodes >= 10);
    }

    /// Restricting tiles to C3/C4 with shortest-path gaps must not change
    /// the odd optimum (Theorem 1's coverings have that shape).
    #[test]
    fn restricted_universe_still_optimal_for_odd() {
        let n = 7u32;
        let ring = Ring::new(n);
        let u = TileUniverse::with_max_gap(ring, 4, n / 2);
        let (tiles, opt, _) = solve_optimal(&u, 10_000_000).expect("solved");
        assert_eq!(opt as u64, rho_formula(n));
        assert_valid_cover(&u, &tiles, 1);
        assert!(tiles.iter().all(|t| t.len() <= 4));
    }
}
