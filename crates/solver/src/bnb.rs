//! Branch & bound minimum DRC covering.
//!
//! Exact search over a [`TileUniverse`]: find a covering of the demanded
//! requests by at most `budget` tiles, or prove none exists. Iterated over
//! increasing budgets this computes `ρ(n)` exactly — the optimality
//! certificates of experiment E4 — and, with a [`CoverSpec`], the λ-fold
//! and partial-instance variants of experiment E8.
//!
//! Search design:
//! * branch on the unsatisfied chord with the highest priority (diameter
//!   chords first, then by decreasing distance) — these are the scarcest
//!   resources (a DRC cycle can carry at most one diameter);
//! * candidates at a branch are the tiles covering that chord, ordered by
//!   how many still-unsatisfied chords they cover (ties: less wasted
//!   capacity); candidates covering nothing new are skipped outright;
//! * prune with `used + max(⌈remaining_dist / n⌉, remaining_diameters,
//!   max_v ⌈uncovered_degree(v)/2⌉) > budget` — the capacity, diameter and
//!   vertex-degree lower bounds restricted to the unsatisfied demand (the
//!   vertex bound is bitset-kernel only);
//! * optional node limit for bounded experiments.
//!
//! # The bitset kernel
//!
//! For unit-demand specs (every demand ≤ 1 — the standard `ρ(n)` instances
//! and all partial instances) coverage bookkeeping runs on word-packed
//! [`ChordSet`]s in the universe's *priority* chord order: placing a tile
//! is two AND/ANDNOT word sweeps, scoring a candidate is an
//! intersection-popcount, and selecting the branch chord is
//! `trailing_zeros` on the uncovered set. The universe precomputes each
//! tile's chord bitmask, load, and diameter count once
//! ([`TileUniverse::tile_mask`] and friends), so search nodes never touch
//! ring arithmetic.
//!
//! Since PR 5, unit-demand searches run on the **iterative,
//! allocation-free core** in `crate::search_core` — an explicit stack
//! over depth-indexed scratch arenas with incrementally maintained bound
//! ingredients and an optional **residual-state dominance memo**
//! ([`MemoConfig`], `crate::memo`) that prunes nodes reaching an
//! already-exhausted uncovered set with an equal-or-worse budget. With
//! the memo off the core reproduces the recursive search here *to the
//! node* ([`budget_search_reference`] keeps the recursive path callable
//! as the differential fixture); λ-fold specs still run the recursive
//! multiplicity kernel.
//!
//! On top of the word kernel the search applies **dominance pruning** at
//! every node: a candidate whose useful-coverage mask is a subset of an
//! earlier sibling's is skipped — replacing it by the dominator in any
//! covering yields a covering of the same size, so completeness is
//! preserved while sibling subtrees that only permute coverage are cut.
//! Dominance at full depth is the decisive pruning rule: the ρ(10)
//! witness search needs 13.4M nodes with it vs 225M without.
//!
//! λ-fold specs (some demand > 1) use the multiplicity kernel: plain
//! per-chord `Vec<u32>` counters, still driven by the precomputed chord
//! index lists.
//!
//! # Symmetry reduction
//!
//! Under [`SymmetryMode::Root`] (the engine default) the root branch only
//! explores one candidate per orbit of the branch chord's dihedral
//! stabilizer (order 4 at the priority diameter chord of an even complete
//! instance), and prefix bounds are strengthened by the greedy dual
//! [`diameter_slack_bound`]; [`SymmetryMode::Full`] extends the orbit
//! filtering to every depth under the incrementally maintained pointwise
//! stabilizer of the placed prefix. [`SymmetryMode::Off`] reproduces the
//! pre-symmetry search node for node — the deprecated free functions pin
//! it, and `bench_snapshot` uses it to track the reduction factor.
//!
//! # Parallel search
//!
//! [`cover_spec_within_budget_parallel`] expands the tree breadth-first
//! into a frontier of independent prefixes (several per thread, not just
//! the root candidates) and drains it on a work-sharing `rayon` scope with
//! a shared early-exit flag and node budget — a thread that exhausts its
//! subtree immediately pulls the next pending prefix, so infeasibility
//! proofs scale past the root branching factor.

use crate::api::{CancelToken, Exhaustion};
use crate::bitset::ChordSet;
use crate::lower_bound::{
    combinatorial_lower_bound, diameter_slack_bound, parity_join_bound, weighted_demand_bound,
};
pub use crate::memo::{MemoConfig, MemoStore, DEFAULT_MEMO_BYTES};
use crate::tiles::DihedralTables;
use crate::TileUniverse;
use cyclecover_graph::Edge;
use cyclecover_ring::Tile;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// How much dihedral symmetry reduction a search applies. `C_n`'s
/// automorphism group is the full dihedral group `D_n`, and a complete (or
/// λ-fold) demand spec is invariant under all `2n` elements — so without
/// reduction the search explores up to `2n` mirror images of every prefix.
///
/// * [`SymmetryMode::Off`] — the exact PR-1 baseline search, bit for bit:
///   no orbit filtering *and* no [`diameter_slack_bound`] strengthening.
///   `bench_snapshot` runs this mode to reproduce historical node counts
///   (BENCH_1.json) unchanged.
/// * [`SymmetryMode::Root`] — the default for exact engines: the root
///   branch explores one candidate per orbit of the stabilizer of the
///   branch chord inside the spec-preserving subgroup (order 4 at the
///   priority diameter chord of an even complete instance), and prefix
///   bounds include the diameter-slack dual ascent.
/// * [`SymmetryMode::Full`] — additionally filters every deeper branch by
///   the pointwise stabilizer of the already-placed prefix, maintained
///   incrementally as a subgroup bitmask (`stab(P ∪ {t}) = stab(P) ∩
///   stab(t)`, one AND per placement). The stabilizer usually collapses
///   to the identity within a tile or two, after which the check is a
///   single word test per node — root-plus-depth-1 reduction in practice,
///   at every depth in principle.
///
/// Soundness of the filter: a kept candidate `t` and a skipped sibling
/// `h·t` (with `h` fixing the spec, every placed tile, and the branch
/// chord) head subtrees that are exact mirror images — `h` maps any
/// covering extending the prefix through `h·t` to one of equal size
/// through `t`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SymmetryMode {
    /// No symmetry reduction, no strengthened bound (the measured
    /// pre-symmetry baseline).
    Off,
    /// Orbit-representative filtering at the root branch only, plus the
    /// diameter-slack prefix bound.
    #[default]
    Root,
    /// Prefix-stabilizer orbit filtering at every depth, plus the
    /// diameter-slack prefix bound.
    Full,
}

/// Externally-imposed resource limits on one budgeted search: a node
/// budget, an optional wall-clock deadline, and an optional shared
/// cancellation flag. Built by the [`crate::api`] engines from a
/// [`crate::api::SolveRequest`]; the deprecated free functions fill in
/// node-budget-only limits.
#[derive(Clone, Default)]
pub(crate) struct RunLimits {
    /// Maximum search-tree nodes to expand (`u64::MAX` = unlimited).
    pub max_nodes: u64,
    /// Absolute wall-clock instant after which the search aborts
    /// (checked every ~4096 expanded nodes, in every worker).
    pub deadline: Option<Instant>,
    /// Cooperative cancellation (checked every ~4096 expanded nodes).
    pub cancel: Option<CancelToken>,
}

impl RunLimits {
    /// Node-budget-only limits — the legacy free-function contract.
    pub(crate) fn nodes_only(max_nodes: u64) -> Self {
        RunLimits {
            max_nodes,
            deadline: None,
            cancel: None,
        }
    }

    /// Whether the deadline has passed or cancellation was requested
    /// *right now* (does not consider the node budget).
    pub(crate) fn stop_requested(&self) -> Option<Exhaustion> {
        if let Some(c) = &self.cancel {
            if let Some(reason) = c.cancel_reason() {
                return Some(reason.as_exhaustion());
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(Exhaustion::Deadline);
            }
        }
        None
    }
}

/// What must be covered: per-request multiplicities.
#[derive(Clone, Debug)]
pub struct CoverSpec {
    /// `demand[e.dense_index(n)]` = how many times request `e` must be
    /// covered (0 = don't care).
    pub demand: Vec<u32>,
}

impl CoverSpec {
    /// The standard spec: every request of `K_n` once.
    pub fn complete(n: u32) -> Self {
        CoverSpec {
            demand: vec![1; n as usize * (n as usize - 1) / 2],
        }
    }

    /// λ-fold: every request `lambda` times.
    pub fn lambda_fold(n: u32, lambda: u32) -> Self {
        CoverSpec {
            demand: vec![lambda; n as usize * (n as usize - 1) / 2],
        }
    }

    /// Cover exactly the given requests once (a partial instance).
    pub fn subset(n: u32, requests: &[Edge]) -> Self {
        let mut demand = vec![0; n as usize * (n as usize - 1) / 2];
        for e in requests {
            demand[e.dense_index(n as usize)] = 1;
        }
        CoverSpec { demand }
    }

    /// Total residual demand weighted by request distance, divided by the
    /// per-cycle capacity `n` — the capacity bound for this spec. Delegates
    /// to [`weighted_demand_bound`], the single home of the
    /// sum-of-distances logic.
    pub fn capacity_lower_bound(&self, ring: cyclecover_ring::Ring) -> u64 {
        weighted_demand_bound(ring, &self.demand)
    }

    /// Whether every demand is ≤ 1 (the bitset kernel applies).
    pub fn is_unit(&self) -> bool {
        self.demand.iter().all(|&d| d <= 1)
    }

    /// The largest per-request multiplicity. ≤ 1 means the unit bitset
    /// machinery applies; ≤ 3 fits the packed 2-bit lane kernel; larger
    /// demands fall back to the recursive multiplicity kernel.
    pub fn max_demand(&self) -> u32 {
        self.demand.iter().copied().max().unwrap_or(0)
    }
}

/// Result of a bounded covering search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// A covering within budget was found (tile indices into the universe).
    Feasible(Vec<u32>),
    /// Exhaustively proved: no covering within the budget exists.
    Infeasible,
    /// Search aborted at the node limit — no conclusion.
    NodeLimit,
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Search-tree nodes expanded.
    pub nodes: u64,
    /// Nodes cut by the lower bounds.
    pub pruned: u64,
    /// Candidate branches skipped by dominance pruning.
    pub dominated: u64,
    /// Candidate branches skipped by dihedral orbit filtering under the
    /// pointwise prefix stabilizer.
    pub sym_pruned: u64,
    /// Prunes owed to the canonical/setwise symmetry machinery: memo
    /// hits whose residual state matched only after canonicalization,
    /// plus sibling candidates cut by setwise-but-not-pointwise
    /// stabilizer elements (`SymmetryMode::Full` only).
    pub canon_pruned: u64,
    /// Nodes (and candidate children) pruned by the residual-state
    /// refutation store (includes the canonical hits counted in
    /// `canon_pruned` and the cross-searcher hits in `shared_hits`).
    pub memo_hits: u64,
    /// The subset of `memo_hits` landing on entries recorded by a
    /// *different* searcher — another budget probe of the same
    /// deepening sweep, another parallel worker, or (with a
    /// service-shared store) another request entirely.
    pub shared_hits: u64,
    /// Residual states resident in the refutation store when the search
    /// finished. A store shared across probes or workers reports its
    /// total population (probes absorb by maximum, not sum).
    pub memo_entries: u64,
    /// Order of the symmetry subgroup the root branch was reduced by
    /// (1 = no reduction; 0 = no search ran).
    pub sym_factor: u32,
    /// Budget probes served by the slack-budgeted partition kernel
    /// (`crate::dlx`) — the certificate-provenance record of the
    /// low-slack route. 0 = every probe ran branch-and-bound.
    pub partition_probes: u64,
}

impl Stats {
    pub(crate) fn absorb(&mut self, other: Stats) {
        self.nodes += other.nodes;
        self.pruned += other.pruned;
        self.dominated += other.dominated;
        self.sym_pruned += other.sym_pruned;
        self.canon_pruned += other.canon_pruned;
        self.memo_hits += other.memo_hits;
        self.shared_hits += other.shared_hits;
        // Deepening probes share one store, so later probes report a
        // superset of earlier probes' entries: the maximum is the
        // store's final population (and 0 + x = x keeps the memo-off
        // and single-probe cases exact).
        self.memo_entries = self.memo_entries.max(other.memo_entries);
        self.sym_factor = self.sym_factor.max(other.sym_factor);
        self.partition_probes += other.partition_probes;
    }
}

/// Coverage bookkeeping strategy: all chord indices are in the universe's
/// *priority* space.
trait Kernel {
    /// Builds the kernel's initial state for `spec`.
    fn new(u: &TileUniverse, spec: &CoverSpec) -> Self;

    /// Whether every demand is satisfied.
    fn satisfied(&self) -> bool;

    /// Records tile `t` as placed.
    fn place(&mut self, u: &TileUniverse, t: u32);

    /// Reverts the most recent [`Kernel::place`] (LIFO).
    fn unplace(&mut self, u: &TileUniverse, t: u32);

    /// `(units of unsatisfied demand tile t would cover, wasted capacity)`.
    fn new_coverage(&self, u: &TileUniverse, t: u32) -> (u32, u32);

    /// Writes tile `t`'s useful-coverage mask into `out` and returns
    /// `true`, or returns `false` if the kernel cannot express it (then
    /// dominance pruning is skipped).
    fn useful_mask(&self, u: &TileUniverse, t: u32, out: &mut ChordSet) -> bool;

    /// Highest-priority unsatisfied chord (priority index).
    fn branch_chord(&self) -> Option<u32>;

    /// Lower bound on additional tiles needed for the unsatisfied demand.
    fn remaining_lb(&self, u: &TileUniverse) -> u64;

    /// A stronger (and costlier) bound, consulted only at nodes that
    /// survive [`Kernel::remaining_lb`] and only when the search runs with
    /// [`SymmetryMode::Root`]/[`SymmetryMode::Full`]; may return early
    /// once the bound exceeds `stop_above`. Kernels without one return 0.
    fn strong_lb(&self, _u: &TileUniverse, _stop_above: u64) -> u64 {
        0
    }

    /// Whether nodes at `depth` placed tiles score/sort/dominance-filter
    /// their candidates; otherwise the static universe order is used. With
    /// word-ops scoring this pays at every depth (measured: the ρ(10)
    /// witness search drops from 225M to 13.4M nodes); the legacy kernel
    /// keeps the original depth-4 cutoff as the faithful pre-bitset
    /// reference.
    fn sorts_at(depth: usize) -> bool;

    /// Whether sorted nodes drop candidates covering nothing new. Sound
    /// for any kernel (a covering using such a tile stays a covering
    /// without it), but the legacy kernel keeps them — the seed explored
    /// them, and the legacy path is the measured "before".
    const PRUNE_ZERO_COVERAGE: bool;
}

/// Word-packed kernel for unit demands: the uncovered set is one bitset,
/// place/unplace are word sweeps with a LIFO undo stack of "newly covered"
/// masks.
struct BitsetKernel {
    /// Still-unsatisfied chords (priority space).
    uncovered: ChordSet,
    /// `undo[0..depth]`: per placed tile, the chords it newly covered.
    undo: Vec<ChordSet>,
    depth: usize,
    rem_dist: u64,
    rem_diam: u64,
}

impl Kernel for BitsetKernel {
    fn new(u: &TileUniverse, spec: &CoverSpec) -> Self {
        let m = u.num_chords();
        assert_eq!(spec.demand.len(), m as usize, "spec size mismatch");
        debug_assert!(spec.is_unit(), "bitset kernel requires unit demands");
        let mut uncovered = ChordSet::empty(m);
        let mut rem_dist = 0u64;
        let mut rem_diam = 0u64;
        for dense in 0..m {
            if spec.demand[dense as usize] > 0 {
                let pri = u.pri_of_dense(dense);
                uncovered.insert(pri);
                rem_dist += u.dist_of_pri(pri) as u64;
                rem_diam += (pri < u.diam_chords()) as u64;
            }
        }
        BitsetKernel {
            uncovered,
            undo: Vec::new(),
            depth: 0,
            rem_dist,
            rem_diam,
        }
    }

    #[inline]
    fn satisfied(&self) -> bool {
        self.uncovered.is_empty()
    }

    fn place(&mut self, u: &TileUniverse, t: u32) {
        if self.undo.len() == self.depth {
            self.undo.push(ChordSet::empty(self.uncovered.len()));
        }
        let newly = &mut self.undo[self.depth];
        u.tile_mask(t).intersection_into(&self.uncovered, newly);
        self.uncovered.subtract(newly);
        let diam = u.diam_chords();
        for i in newly.iter() {
            self.rem_dist -= u.dist_of_pri(i) as u64;
            self.rem_diam -= (i < diam) as u64;
        }
        self.depth += 1;
    }

    fn unplace(&mut self, u: &TileUniverse, _t: u32) {
        debug_assert!(self.depth > 0, "unplace without place");
        self.depth -= 1;
        let newly = &self.undo[self.depth];
        let diam = u.diam_chords();
        for i in newly.iter() {
            self.rem_dist += u.dist_of_pri(i) as u64;
            self.rem_diam += (i < diam) as u64;
        }
        self.uncovered.union_with(newly);
    }

    #[inline]
    fn new_coverage(&self, u: &TileUniverse, t: u32) -> (u32, u32) {
        let n = u.ring().n();
        let mut cov = 0u32;
        let mut useful = 0u32;
        for (wi, (a, b)) in u
            .tile_mask(t)
            .words()
            .iter()
            .zip(self.uncovered.words())
            .enumerate()
        {
            let mut w = a & b;
            cov += w.count_ones();
            while w != 0 {
                let i = (wi as u32) * 64 + w.trailing_zeros();
                useful += u.dist_of_pri(i);
                w &= w - 1;
            }
        }
        (cov, n - useful.min(n))
    }

    #[inline]
    fn useful_mask(&self, u: &TileUniverse, t: u32, out: &mut ChordSet) -> bool {
        u.tile_mask(t).intersection_into(&self.uncovered, out);
        true
    }

    #[inline]
    fn branch_chord(&self) -> Option<u32> {
        self.uncovered.first_set()
    }

    fn sorts_at(_depth: usize) -> bool {
        true
    }

    const PRUNE_ZERO_COVERAGE: bool = true;

    fn remaining_lb(&self, u: &TileUniverse) -> u64 {
        let n = u.ring().n();
        let mut lb = self.rem_dist.div_ceil(n as u64).max(self.rem_diam);
        // Vertex-degree bound: a cycle visits a vertex at most once, so any
        // tile covers at most 2 uncovered chords incident to it — the
        // unsatisfied demand at any single vertex needs ⌈deg/2⌉ more tiles.
        for v in 0..n {
            let deg = u.vertex_mask(v).intersection_count(&self.uncovered) as u64;
            lb = lb.max(deg.div_ceil(2));
        }
        lb
    }

    fn strong_lb(&self, u: &TileUniverse, stop_above: u64) -> u64 {
        // Cheap parity (T-join) term first — it alone settles the
        // capacity-tight even refutations — then the pricier
        // diameter-slack dual ascent only if the node is still alive.
        let parity = parity_join_bound(u, &self.uncovered, self.rem_dist);
        if parity > stop_above {
            return parity;
        }
        diameter_slack_bound(u, &self.uncovered, self.rem_dist, stop_above).max(parity)
    }
}

/// Multiplicity kernel for λ-fold specs (demand > 1): per-chord counters,
/// driven by the universe's precomputed chord index lists.
struct MultiKernel {
    /// priority index → cover multiplicity so far.
    covered: Vec<u32>,
    /// priority index → required multiplicity.
    demand: Vec<u32>,
    /// Number of (chord, multiplicity) units still unsatisfied.
    unsatisfied: u64,
    rem_dist: u64,
    rem_diam: u64,
}

impl Kernel for MultiKernel {
    fn new(u: &TileUniverse, spec: &CoverSpec) -> Self {
        let m = u.num_chords();
        assert_eq!(spec.demand.len(), m as usize, "spec size mismatch");
        let mut demand = vec![0u32; m as usize];
        let mut unsatisfied = 0u64;
        let mut rem_dist = 0u64;
        let mut rem_diam = 0u64;
        for pri in 0..m {
            let need = spec.demand[u.dense_of_pri(pri) as usize];
            demand[pri as usize] = need;
            unsatisfied += need as u64;
            rem_dist += need as u64 * u.dist_of_pri(pri) as u64;
            if pri < u.diam_chords() {
                rem_diam += need as u64;
            }
        }
        MultiKernel {
            covered: vec![0; m as usize],
            demand,
            unsatisfied,
            rem_dist,
            rem_diam,
        }
    }

    #[inline]
    fn satisfied(&self) -> bool {
        self.unsatisfied == 0
    }

    fn place(&mut self, u: &TileUniverse, t: u32) {
        let diam = u.diam_chords();
        for &i in u.tile_chords(t) {
            let i = i as usize;
            if self.covered[i] < self.demand[i] {
                self.unsatisfied -= 1;
                self.rem_dist -= u.dist_of_pri(i as u32) as u64;
                self.rem_diam -= ((i as u32) < diam) as u64;
            }
            self.covered[i] += 1;
        }
    }

    fn unplace(&mut self, u: &TileUniverse, t: u32) {
        let diam = u.diam_chords();
        for &i in u.tile_chords(t) {
            let i = i as usize;
            self.covered[i] -= 1;
            if self.covered[i] < self.demand[i] {
                self.unsatisfied += 1;
                self.rem_dist += u.dist_of_pri(i as u32) as u64;
                self.rem_diam += ((i as u32) < diam) as u64;
            }
        }
    }

    #[inline]
    fn new_coverage(&self, u: &TileUniverse, t: u32) -> (u32, u32) {
        let n = u.ring().n();
        let mut cov = 0u32;
        let mut useful = 0u32;
        for &i in u.tile_chords(t) {
            if self.covered[i as usize] < self.demand[i as usize] {
                cov += 1;
                useful += u.dist_of_pri(i);
            }
        }
        (cov, n - useful.min(n))
    }

    fn useful_mask(&self, _u: &TileUniverse, _t: u32, _out: &mut ChordSet) -> bool {
        // Dominance by chord subset is not sound under multiplicities (two
        // placements of the same tile differ), so the multi kernel opts out.
        false
    }

    #[inline]
    fn branch_chord(&self) -> Option<u32> {
        (0..self.covered.len() as u32).find(|&i| self.covered[i as usize] < self.demand[i as usize])
    }

    fn sorts_at(depth: usize) -> bool {
        depth <= 4
    }

    const PRUNE_ZERO_COVERAGE: bool = false;

    #[inline]
    fn remaining_lb(&self, u: &TileUniverse) -> u64 {
        // Capacity and diameter bounds only — this is the pre-bitset
        // reference path, kept algorithmically identical to the seed.
        self.rem_dist.div_ceil(u.ring().n() as u64).max(self.rem_diam)
    }
}

struct SearchCtx<'a, K: Kernel> {
    u: &'a TileUniverse,
    kernel: K,
    budget: u32,
    max_nodes: u64,
    stats: Stats,
    chosen: Vec<u32>,
    hit_limit: bool,
    /// Why the search stopped early (only meaningful when `hit_limit`);
    /// `None` there means another worker's early-exit flag tripped.
    stop_cause: Option<Exhaustion>,
    /// Wall-clock deadline, checked every ~4096 nodes.
    deadline: Option<Instant>,
    /// Cooperative cancellation flag, checked every ~4096 nodes.
    cancel: Option<&'a AtomicBool>,
    early_exit: Option<&'a AtomicBool>,
    /// Shared node accounting for the parallel search: `(counter, cap)`.
    /// Every 1024 local nodes the delta is flushed into the counter and
    /// the cap is checked, so the *global* budget is enforced within
    /// `threads × 1024` nodes of slack (not per-worker).
    shared_nodes: Option<(&'a AtomicU64, u64)>,
    /// Local node count already flushed into the shared counter.
    synced_nodes: u64,
    /// Scratch masks reused across dominance passes (index = candidate
    /// position within the current node).
    dom_scratch: Vec<ChordSet>,
    /// Dihedral reduction level (degraded to `Off` when the tables are
    /// unavailable or the spec has no symmetry).
    mode: SymmetryMode,
    /// Whether the strong (diameter-slack) prefix bound is consulted —
    /// the requested mode was not `Off`, independent of table
    /// availability.
    strong: bool,
    /// The dihedral tables, when `mode != Off`.
    sym: Option<&'a DihedralTables>,
    /// Subgroup preserving the spec's initial demand (bitmask).
    spec_group: u64,
    /// `Full` mode: `stab_stack[d]` = pointwise stabilizer of the first
    /// `d` placed tiles intersected with `spec_group` (seeded with
    /// `spec_group` at depth 0).
    stab_stack: Vec<u64>,
    /// Stamp array over tile indices backing the per-branch "already kept
    /// a candidate of this orbit" test (lazily sized).
    sym_seen: Vec<u64>,
    sym_stamp: u64,
}

/// Resolves a *requested* symmetry level into the effective one: `Off`
/// when the tables are unavailable (`2n > 64`) or the spec-preserving
/// subgroup is only the identity; otherwise the requested mode with the
/// tables and the subgroup mask. Shared by the recursive context and
/// the iterative core — the differential node-count gate relies on both
/// degrading identically.
pub(crate) fn resolve_symmetry<'a>(
    u: &'a TileUniverse,
    spec: &CoverSpec,
    requested: SymmetryMode,
) -> (SymmetryMode, Option<&'a DihedralTables>, u64) {
    if requested == SymmetryMode::Off {
        return (SymmetryMode::Off, None, 0);
    }
    match u.dihedral() {
        Some(tables) => {
            let group = tables.demand_preserving(|pri| spec.demand[u.dense_of_pri(pri) as usize]);
            if group & !1 == 0 {
                // Only the identity: nothing to reduce by.
                (SymmetryMode::Off, None, 0)
            } else {
                (requested, Some(tables), group)
            }
        }
        None => (SymmetryMode::Off, None, 0),
    }
}

impl<'a, K: Kernel> SearchCtx<'a, K> {
    fn new(
        u: &'a TileUniverse,
        spec: &CoverSpec,
        budget: u32,
        lim: &'a RunLimits,
        requested: SymmetryMode,
    ) -> Self {
        let strong = requested != SymmetryMode::Off;
        let (mode, sym, spec_group) = resolve_symmetry(u, spec, requested);
        SearchCtx {
            u,
            kernel: K::new(u, spec),
            budget,
            max_nodes: lim.max_nodes,
            stats: Stats {
                sym_factor: 1,
                ..Stats::default()
            },
            chosen: Vec::new(),
            hit_limit: false,
            stop_cause: None,
            deadline: lim.deadline,
            cancel: lim.cancel.as_ref().map(|c| c.flag()),
            early_exit: None,
            shared_nodes: None,
            synced_nodes: 0,
            // Sized once from the longest candidate list any branch chord
            // can present — no node ever allocates a scratch mask
            // mid-search (the old growth loop built full-width empty
            // `ChordSet`s from inside `sorted_candidates`).
            dom_scratch: (0..u.max_candidates())
                .map(|_| ChordSet::empty(u.num_chords()))
                .collect(),
            mode,
            strong,
            sym,
            spec_group,
            stab_stack: if mode == SymmetryMode::Full {
                vec![spec_group]
            } else {
                Vec::new()
            },
            sym_seen: Vec::new(),
            sym_stamp: 0,
        }
    }

    /// Flushes local node counts into the shared counter; returns `true`
    /// if the global budget is exhausted.
    fn sync_shared_nodes(&mut self) -> bool {
        let Some((counter, cap)) = self.shared_nodes else {
            return false;
        };
        let delta = self.stats.nodes - self.synced_nodes;
        self.synced_nodes = self.stats.nodes;
        let total = counter.fetch_add(delta, Ordering::Relaxed) + delta;
        total > cap
    }

    #[inline]
    fn place(&mut self, t: u32) {
        if self.mode == SymmetryMode::Full {
            let top = *self.stab_stack.last().expect("stab stack seeded");
            let stab = self.sym.expect("tables exist in Full mode").tile_stab(t);
            self.stab_stack.push(top & stab);
        }
        self.kernel.place(self.u, t);
        self.chosen.push(t);
    }

    #[inline]
    fn unplace(&mut self, t: u32) {
        debug_assert_eq!(self.chosen.last(), Some(&t));
        self.chosen.pop();
        self.kernel.unplace(self.u, t);
        if self.mode == SymmetryMode::Full {
            self.stab_stack.pop();
        }
    }

    /// Drops candidates whose subtree mirrors an earlier sibling's: a
    /// candidate is skipped when some symmetry `h` — preserving the spec,
    /// every placed tile, and the branch chord — maps it onto an
    /// already-kept candidate. `Root` mode applies this at the empty
    /// prefix only; `Full` mode at every node, under the incrementally
    /// maintained prefix stabilizer.
    fn filter_symmetric(&mut self, branch: u32, cands: Vec<u32>) -> Vec<u32> {
        let Some(sym) = self.sym else { return cands };
        let group = match self.mode {
            SymmetryMode::Off => return cands,
            SymmetryMode::Root => {
                if !self.chosen.is_empty() {
                    return cands;
                }
                self.spec_group
            }
            SymmetryMode::Full => *self.stab_stack.last().expect("stab stack seeded"),
        };
        let filter = group & sym.chord_stab(branch);
        if self.chosen.is_empty() {
            self.stats.sym_factor = self.stats.sym_factor.max(filter.count_ones());
        }
        if filter & !1 == 0 {
            // Identity only: every orbit is a singleton.
            return cands;
        }
        if self.sym_seen.len() < sym.num_tiles() as usize {
            self.sym_seen.resize(sym.num_tiles() as usize, 0);
        }
        self.sym_stamp += 1;
        let stamp = self.sym_stamp;
        let mut kept = Vec::with_capacity(cands.len());
        for t in cands {
            let mut elements = filter & !1;
            let mut mirrored = false;
            while elements != 0 {
                let g = elements.trailing_zeros();
                elements &= elements - 1;
                let image = sym.tile_image(g, t);
                if image != t && self.sym_seen[image as usize] == stamp {
                    mirrored = true;
                    break;
                }
            }
            if mirrored {
                self.stats.sym_pruned += 1;
            } else {
                self.sym_seen[t as usize] = stamp;
                kept.push(t);
            }
        }
        kept
    }

    /// Scored, sorted, dominance-filtered candidates for the branch chord.
    /// Candidates covering nothing new are dropped (a covering using one
    /// stays a covering without it, so completeness is preserved).
    fn sorted_candidates(&mut self, branch: u32) -> Vec<u32> {
        let cands = self.u.candidates_pri(branch);
        let mut scored: Vec<(u32, u32, u32)> = Vec::with_capacity(cands.len());
        for &t in cands {
            let (cov, waste) = self.kernel.new_coverage(self.u, t);
            if cov > 0 || !K::PRUNE_ZERO_COVERAGE {
                scored.push((t, cov, waste));
            }
        }
        scored.sort_by_key(|&(_, cov, waste)| (std::cmp::Reverse(cov), waste));

        // Dominance: drop a candidate whose useful coverage is a subset of
        // an earlier one's. Sorting put higher coverage first, so any
        // strict dominator precedes the dominated candidate; for equal
        // masks the first occurrence survives. Transitivity makes
        // comparing against dropped earlier candidates safe.
        let c = scored.len();
        debug_assert!(
            c <= self.dom_scratch.len(),
            "scratch arena pre-sized from max_candidates"
        );
        let mut masks_ok = c > 1;
        if masks_ok {
            for (slot, &(t, _, _)) in scored.iter().enumerate() {
                if !self
                    .kernel
                    .useful_mask(self.u, t, &mut self.dom_scratch[slot])
                {
                    masks_ok = false;
                    break;
                }
            }
        }
        let cands: Vec<u32> = if masks_ok {
            let mut keep = vec![true; c];
            for (i, keep_i) in keep.iter_mut().enumerate().skip(1) {
                let (earlier, rest) = self.dom_scratch.split_at(i);
                let mask_i = &rest[0];
                if earlier.iter().any(|prior| mask_i.is_subset_of(prior)) {
                    *keep_i = false;
                    self.stats.dominated += 1;
                }
            }
            scored
                .into_iter()
                .zip(keep)
                .filter_map(|((t, _, _), k)| k.then_some(t))
                .collect()
        } else {
            scored.into_iter().map(|(t, _, _)| t).collect()
        };
        self.filter_symmetric(branch, cands)
    }

    fn dfs(&mut self) -> bool {
        if self.kernel.satisfied() {
            return true;
        }
        self.stats.nodes += 1;
        if self.stats.nodes > self.max_nodes {
            self.hit_limit = true;
            self.stop_cause = Some(Exhaustion::NodeBudget);
            return false;
        }
        if self.stats.nodes.is_multiple_of(1024) {
            if let Some(flag) = self.early_exit {
                if flag.load(Ordering::Relaxed) {
                    self.hit_limit = true;
                    return false;
                }
            }
            if self.sync_shared_nodes() {
                self.hit_limit = true;
                self.stop_cause = Some(Exhaustion::NodeBudget);
                return false;
            }
        }
        if self.stats.nodes.is_multiple_of(4096) {
            if let Some(flag) = self.cancel {
                if flag.load(Ordering::Relaxed) {
                    self.hit_limit = true;
                    self.stop_cause = Some(Exhaustion::Cancelled);
                    return false;
                }
            }
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.hit_limit = true;
                    self.stop_cause = Some(Exhaustion::Deadline);
                    return false;
                }
            }
        }
        let used = self.chosen.len() as u64;
        if used + self.kernel.remaining_lb(self.u) > self.budget as u64 {
            self.stats.pruned += 1;
            return false;
        }
        if self.strong {
            let slack = self.budget as u64 - used;
            if self.kernel.strong_lb(self.u, slack) > slack {
                self.stats.pruned += 1;
                return false;
            }
        }
        let branch = self.kernel.branch_chord().expect("unsatisfied demand exists");
        if K::sorts_at(self.chosen.len()) {
            for t in self.sorted_candidates(branch) {
                self.place(t);
                if self.dfs() {
                    return true;
                }
                self.unplace(t);
                if self.hit_limit {
                    return false;
                }
            }
        } else if self.mode == SymmetryMode::Full {
            // `Full` keeps its every-depth filtering promise on the
            // non-sorting (multiplicity) path too: materialize the useful
            // candidates in universe order and run them through the
            // orbit filter. Only reachable with a nontrivial spec group,
            // so the extra Vec is never paid by `Off`/`Root` here.
            let u = self.u;
            let cands: Vec<u32> = u
                .candidates_pri(branch)
                .iter()
                .copied()
                .filter(|&t| self.kernel.new_coverage(u, t).0 > 0)
                .collect();
            for t in self.filter_symmetric(branch, cands) {
                self.place(t);
                if self.dfs() {
                    return true;
                }
                self.unplace(t);
                if self.hit_limit {
                    return false;
                }
            }
        } else {
            // The candidate slice borrows the universe (a copied `&'a`
            // reference), not `self`, so `self` stays free for mutation.
            let u = self.u;
            for &t in u.candidates_pri(branch) {
                if self.kernel.new_coverage(u, t).0 == 0 {
                    continue;
                }
                self.place(t);
                if self.dfs() {
                    return true;
                }
                self.unplace(t);
                if self.hit_limit {
                    return false;
                }
            }
        }
        false
    }
}

fn search<K: Kernel>(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    lim: &RunLimits,
    sym: SymmetryMode,
) -> (Outcome, Stats, Option<Exhaustion>) {
    let mut ctx = SearchCtx::<K>::new(u, spec, budget, lim, sym);
    if ctx.dfs() {
        (Outcome::Feasible(ctx.chosen.clone()), ctx.stats, None)
    } else if ctx.hit_limit {
        (Outcome::NodeLimit, ctx.stats, ctx.stop_cause)
    } else {
        (Outcome::Infeasible, ctx.stats, None)
    }
}

/// Budgeted search under full [`RunLimits`]: the engine-facing entry
/// point. Unit-demand specs run on the **iterative bitset core**
/// (allocation-free search stack, incremental bounds, and the
/// refutation `store` — pass the same store across probes or requests
/// to reuse recorded refutations, or `None` for the memo-free search);
/// specs with multiplicities in `2..=3` (every λ-fold instance the
/// paper studies) on the **word-parallel lane core** — packed 2-bit
/// residual lanes with the same dominance, symmetry, bound, and memo
/// machinery. Only demands > 3 fall back to the recursive multiplicity
/// kernel (which ignores the store). The third component reports why an
/// inconclusive search stopped.
///
/// λ-fold probes whose waste slack `budget·n − λ·Σd(e)` sits in
/// `[0, n)` — capacity-tight instances, where almost every tile of a
/// witness must be full-load — route through the slack-budgeted
/// partition kernel ([`crate::dlx`]) instead of the lane core; the
/// route is recorded in [`Stats::partition_probes`]. Negative slack
/// (budget below capacity) stays on the lane core, whose root bound
/// refutes in one node — the frozen λ gate counts. Unit probes never
/// reroute: their memo-off node counts are pinned bit for bit to the
/// recursive reference.
pub(crate) fn budget_search(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    lim: &RunLimits,
    sym: SymmetryMode,
    store: Option<&MemoStore>,
) -> (Outcome, Stats, Option<Exhaustion>) {
    if spec.is_unit() {
        crate::search_core::search_iterative(u, spec, budget, lim, sym, store)
    } else if spec.max_demand() <= 3 {
        let n = u.ring().n() as u64;
        let wsum: u64 = (0..u.num_chords())
            .map(|d| spec.demand[d as usize] as u64 * u.dist_of_pri(u.pri_of_dense(d)) as u64)
            .sum();
        let cap = budget as u64 * n;
        if cap >= wsum && cap - wsum < n {
            crate::dlx::search_partition(u, spec, budget, lim, sym, store)
        } else {
            crate::search_core::search_lanes(u, spec, budget, lim, sym, store)
        }
    } else {
        search::<MultiKernel>(u, spec, budget, lim, sym)
    }
}

/// The PR-3 **recursive** search path, kept callable as the differential
/// reference for the iterative core: unit-demand specs on the recursive
/// bitset kernel, λ-fold specs on the multiplicity kernel — never the
/// memo, never the setwise/canonical machinery. With the memo off the
/// iterative core must agree with this function on verdicts, optima,
/// *and exact node counts* (`tests/kernel_proptests.rs` pins it).
pub fn budget_search_reference(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    max_nodes: u64,
    sym: SymmetryMode,
) -> (Outcome, Stats) {
    let lim = RunLimits::nodes_only(max_nodes);
    let (o, s, _) = if spec.is_unit() {
        search::<BitsetKernel>(u, spec, budget, &lim, sym)
    } else {
        search::<MultiKernel>(u, spec, budget, &lim, sym)
    };
    (o, s)
}

/// `budget_search` forced onto the word-parallel **lane core** for a
/// λ ≤ 3 spec, bypassing the low-slack partition dispatch — the
/// branch-and-bound counterpart path the partition kernel is measured
/// against (benches gate partition witness rows strictly under it;
/// differential tests pin verdicts and optima to it).
///
/// # Panics
/// Panics if a demand exceeds 3 (the lane core's packed width).
pub fn budget_search_packed(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    max_nodes: u64,
    sym: SymmetryMode,
    store: Option<&MemoStore>,
) -> (Outcome, Stats) {
    assert!(spec.max_demand() <= 3, "lane core requires demands ≤ 3");
    let lim = RunLimits::nodes_only(max_nodes);
    let (o, s, _) = crate::search_core::search_lanes(u, spec, budget, &lim, sym, store);
    (o, s)
}

/// `budget_search` forced onto the **slack-budgeted partition
/// kernel** ([`crate::dlx`]) regardless of the instance's slack — the
/// direct entry benches and differential tests use to measure the
/// partition route on any λ ≤ 3 spec (the auto-dispatch only reroutes
/// when slack < n).
///
/// # Panics
/// Panics if a demand exceeds 3 (the kernel's packed lane width).
pub fn budget_search_partition(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    max_nodes: u64,
    sym: SymmetryMode,
    store: Option<&MemoStore>,
) -> (Outcome, Stats) {
    let lim = RunLimits::nodes_only(max_nodes);
    let (o, s, _) = crate::dlx::search_partition(u, spec, budget, &lim, sym, store);
    (o, s)
}

/// [`budget_search`] forced onto the multiplicity (`Vec<u32>`) kernel —
/// the pre-bitset reference path for differential tests and benches.
/// Always runs [`SymmetryMode::Off`]: this path *is* the measured
/// "before".
pub(crate) fn budget_search_legacy(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    lim: &RunLimits,
) -> (Outcome, Stats, Option<Exhaustion>) {
    search::<MultiKernel>(u, spec, budget, lim, SymmetryMode::Off)
}

/// [`budget_search`] on the breadth-first frontier + `rayon` scope.
/// `prefix_per_thread` controls how many independent prefixes are
/// expanded per thread before the scope drains them. Unit-demand specs
/// drain [`crate::search_core`] workers sharing one refutation store
/// (each attached under its own generation, so cross-worker reuse shows
/// up as `shared_hits`); λ ≤ 3 specs drain the lane-core workers the
/// same way; only demands > 3 keep the recursive multiplicity workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn budget_search_parallel(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    lim: &RunLimits,
    threads: usize,
    prefix_per_thread: usize,
    sym: SymmetryMode,
    store: Option<&MemoStore>,
) -> (Outcome, Stats, Option<Exhaustion>) {
    if spec.is_unit() {
        crate::search_core::search_iterative_parallel(
            u,
            spec,
            budget,
            lim,
            threads,
            prefix_per_thread,
            sym,
            store,
        )
    } else if spec.max_demand() <= 3 {
        crate::search_core::search_lanes_parallel(
            u,
            spec,
            budget,
            lim,
            threads,
            prefix_per_thread,
            sym,
            store,
        )
    } else {
        search_parallel::<MultiKernel>(u, spec, budget, lim, threads, prefix_per_thread, sym)
    }
}

/// Searches for a covering of `spec` using at most `budget` tiles from the
/// universe. Exhaustive up to `max_nodes` search nodes. Unit-demand specs
/// run on the bitset kernel; λ-fold specs on the multiplicity kernel.
///
/// Runs without symmetry reduction, preserving this function's historical
/// node counts; the engine path defaults to [`SymmetryMode::Root`].
#[deprecated(
    since = "0.2.0",
    note = "use the `SolveRequest`/`Engine` API in `cyclecover_solver::api`: \
            engine \"bitset\" with `Objective::WithinBudget`; \
            `SolveRequest::with_symmetry(SymmetryMode::Off)` reproduces this \
            function's exact search"
)]
pub fn cover_spec_within_budget(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    max_nodes: u64,
) -> (Outcome, Stats) {
    let (o, s, _) = budget_search(
        u,
        spec,
        budget,
        &RunLimits::nodes_only(max_nodes),
        SymmetryMode::Off,
        None,
    );
    (o, s)
}

/// Reference implementation on the multiplicity (`Vec<u32>`) kernel
/// regardless of the spec — the pre-bitset search path, kept callable for
/// differential tests and before/after benchmarking.
#[deprecated(
    since = "0.2.0",
    note = "use the `SolveRequest`/`Engine` API in `cyclecover_solver::api` \
            (engine \"legacy\")"
)]
pub fn cover_spec_within_budget_legacy(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    max_nodes: u64,
) -> (Outcome, Stats) {
    let (o, s, _) = budget_search_legacy(u, spec, budget, &RunLimits::nodes_only(max_nodes));
    (o, s)
}

/// [`cover_spec_within_budget`] for the standard all-of-`K_n` spec.
#[deprecated(
    since = "0.2.0",
    note = "use the `SolveRequest`/`Engine` API in `cyclecover_solver::api`: \
            engine \"bitset\" with `Objective::WithinBudget`; \
            `SolveRequest::with_symmetry(SymmetryMode::Off)` reproduces this \
            function's exact search"
)]
pub fn cover_within_budget(u: &TileUniverse, budget: u32, max_nodes: u64) -> (Outcome, Stats) {
    let spec = CoverSpec::complete(u.ring().n());
    let (o, s, _) = budget_search(
        u,
        &spec,
        budget,
        &RunLimits::nodes_only(max_nodes),
        SymmetryMode::Off,
        None,
    );
    (o, s)
}

/// Parallel variant: the tree is expanded breadth-first into a frontier of
/// independent prefixes (several per thread), which a work-sharing `rayon`
/// scope drains with a shared early-exit flag and node budget. Semantics
/// match [`cover_spec_within_budget`] (up to which feasible solution is
/// found). `threads = 0` uses the available parallelism.
#[deprecated(
    since = "0.2.0",
    note = "use the `SolveRequest`/`Engine` API in `cyclecover_solver::api`: \
            engine \"bitset-parallel\" (or `ExecPolicy::Parallel`); \
            `SolveRequest::with_symmetry(SymmetryMode::Off)` reproduces this \
            function's exact search"
)]
pub fn cover_spec_within_budget_parallel(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    max_nodes: u64,
    threads: usize,
) -> (Outcome, Stats) {
    let (o, s, _) = budget_search_parallel(
        u,
        spec,
        budget,
        &RunLimits::nodes_only(max_nodes),
        threads,
        DEFAULT_PREFIX_PER_THREAD,
        SymmetryMode::Off,
        None,
    );
    (o, s)
}

/// Frontier prefixes expanded per thread when the caller does not choose
/// (`prefix_depth = 3` in [`crate::api::ExecPolicy::Parallel`] terms).
pub(crate) const DEFAULT_PREFIX_PER_THREAD: usize = 8;

/// The recursive frontier-parallel driver (λ-fold specs; unit specs run
/// `crate::search_core::search_iterative_parallel`, which mirrors this
/// function stanza for stanza — a fix to either's scheduling logic
/// belongs in both).
fn search_parallel<K: Kernel>(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    lim: &RunLimits,
    threads: usize,
    prefix_per_thread: usize,
    sym: SymmetryMode,
) -> (Outcome, Stats, Option<Exhaustion>) {
    let max_nodes = lim.max_nodes;
    // `num_threads(0)` = available parallelism, mirroring rayon's builder.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let threads = pool.current_num_threads();
    let mut root = SearchCtx::<K>::new(u, spec, budget, lim, sym);
    if root.kernel.satisfied() {
        return (Outcome::Feasible(Vec::new()), root.stats, None);
    }
    let root_infeasible = root.kernel.remaining_lb(u) > budget as u64
        || (root.strong && root.kernel.strong_lb(u, budget as u64) > budget as u64);
    if root_infeasible {
        // Count the root node, matching what the sequential dfs reports
        // for the identical workload.
        return (
            Outcome::Infeasible,
            Stats {
                nodes: 1,
                pruned: 1,
                sym_factor: 1,
                ..Stats::default()
            },
            None,
        );
    }

    // Breadth-first frontier expansion: keep splitting the shallowest
    // prefix until there are enough independent tasks to keep every thread
    // busy through subtree-size imbalance.
    let target = threads * prefix_per_thread.max(1);
    let mut frontier: VecDeque<Vec<u32>> = VecDeque::from([Vec::new()]);
    while frontier.len() < target {
        let Some(prefix) = frontier.pop_front() else {
            break;
        };
        if let Some(cause) = lim.stop_requested() {
            return (Outcome::NodeLimit, root.stats, Some(cause));
        }
        for &t in &prefix {
            root.place(t);
        }
        let mut early: Option<Outcome> = None;
        if root.kernel.satisfied() {
            early = Some(Outcome::Feasible(root.chosen.clone()));
        } else {
            root.stats.nodes += 1;
            let prefix_slack = (budget as u64).saturating_sub(root.chosen.len() as u64);
            if root.stats.nodes > max_nodes {
                early = Some(Outcome::NodeLimit);
            } else if root.chosen.len() as u64 + root.kernel.remaining_lb(u)
                > budget as u64
                || (root.strong && root.kernel.strong_lb(u, prefix_slack) > prefix_slack)
            {
                // The prefix dies here; nothing gets enqueued.
                root.stats.pruned += 1;
            } else {
                let branch = root.kernel.branch_chord().expect("unsatisfied");
                for t in root.sorted_candidates(branch) {
                    let mut child = prefix.clone();
                    child.push(t);
                    frontier.push_back(child);
                }
            }
        }
        for &t in prefix.iter().rev() {
            root.unplace(t);
        }
        if let Some(outcome) = early {
            let cause = matches!(outcome, Outcome::NodeLimit)
                .then_some(Exhaustion::NodeBudget);
            return (outcome, root.stats, cause);
        }
    }
    let expand_stats = root.stats;
    drop(root);
    if frontier.is_empty() {
        // Every prefix was pruned or expanded away: exhaustive.
        return (Outcome::Infeasible, expand_stats, None);
    }

    let found = AtomicBool::new(false);
    let limit_hit = AtomicBool::new(false);
    // Why the first externally-stopped worker stopped (0 = none; see
    // `encode_cause`). Deadline/cancel out-rank the node budget so a
    // request that trips both reports the wall-clock cause.
    let stop_cause = AtomicU8::new(0);
    let nodes = AtomicU64::new(expand_stats.nodes);
    let pruned = AtomicU64::new(expand_stats.pruned);
    let dominated = AtomicU64::new(expand_stats.dominated);
    let sym_pruned = AtomicU64::new(expand_stats.sym_pruned);
    let sym_factor = AtomicU32::new(expand_stats.sym_factor);
    let solution = std::sync::Mutex::new(None::<Vec<u32>>);

    pool.scope(|scope| {
        for prefix in &frontier {
            let found = &found;
            let limit_hit = &limit_hit;
            let stop_cause = &stop_cause;
            let nodes = &nodes;
            let pruned = &pruned;
            let dominated = &dominated;
            let sym_pruned = &sym_pruned;
            let sym_factor = &sym_factor;
            let solution = &solution;
            scope.spawn(move |_| {
                if found.load(Ordering::Relaxed) {
                    return;
                }
                // The node budget is global: every worker flushes its
                // local count into `nodes` each 1024 nodes and aborts once
                // the shared total passes `max_nodes`, so total work
                // overshoots by at most `threads × 1024` nodes.
                if nodes.load(Ordering::Relaxed) >= max_nodes {
                    limit_hit.store(true, Ordering::Relaxed);
                    stop_cause.fetch_max(encode_cause(Exhaustion::NodeBudget), Ordering::Relaxed);
                    return;
                }
                // Workers inherit the deadline and cancellation flag (the
                // per-worker node cap is lifted in favor of the shared
                // counter above), so a wall-clock deadline stops every
                // worker within ~4096 nodes.
                let worker_lim = RunLimits {
                    max_nodes: u64::MAX,
                    deadline: lim.deadline,
                    cancel: lim.cancel.clone(),
                };
                let mut ctx = SearchCtx::<K>::new(u, spec, budget, &worker_lim, sym);
                ctx.early_exit = Some(found);
                ctx.shared_nodes = Some((nodes, max_nodes));
                for &t in prefix {
                    ctx.place(t);
                }
                let ok = ctx.dfs();
                // Flush the unsynced remainder so the reported total is exact.
                ctx.sync_shared_nodes();
                pruned.fetch_add(ctx.stats.pruned, Ordering::Relaxed);
                dominated.fetch_add(ctx.stats.dominated, Ordering::Relaxed);
                sym_pruned.fetch_add(ctx.stats.sym_pruned, Ordering::Relaxed);
                sym_factor.fetch_max(ctx.stats.sym_factor, Ordering::Relaxed);
                if ok {
                    found.store(true, Ordering::Relaxed);
                    *solution.lock().expect("poison-free") = Some(ctx.chosen.clone());
                    return;
                }
                if ctx.hit_limit && !found.load(Ordering::Relaxed) {
                    limit_hit.store(true, Ordering::Relaxed);
                    if let Some(cause) = ctx.stop_cause {
                        stop_cause.fetch_max(encode_cause(cause), Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let stats = Stats {
        nodes: nodes.load(Ordering::Relaxed),
        pruned: pruned.load(Ordering::Relaxed),
        dominated: dominated.load(Ordering::Relaxed),
        sym_pruned: sym_pruned.load(Ordering::Relaxed),
        sym_factor: sym_factor.load(Ordering::Relaxed),
        // The recursive parallel driver never runs the memo machinery
        // (λ-fold specs only — the iterative core serves unit specs).
        ..Stats::default()
    };
    let sol = solution.lock().expect("poison-free").take();
    match sol {
        Some(sol) => (Outcome::Feasible(sol), stats, None),
        None if limit_hit.load(Ordering::Relaxed) => (
            Outcome::NodeLimit,
            stats,
            Some(decode_cause(stop_cause.load(Ordering::Relaxed))),
        ),
        None => (Outcome::Infeasible, stats, None),
    }
}

/// Ranks stop causes for the parallel aggregation (`fetch_max`): an
/// explicit cancellation or deadline is more informative than "ran out of
/// nodes", so it wins when workers disagree.
pub(crate) fn encode_cause(c: Exhaustion) -> u8 {
    match c {
        Exhaustion::EngineLimit => 1,
        Exhaustion::NodeBudget => 2,
        Exhaustion::Deadline => 3,
        Exhaustion::Cancelled => 4,
        Exhaustion::Shutdown => 5,
    }
}

pub(crate) fn decode_cause(code: u8) -> Exhaustion {
    match code {
        3 => Exhaustion::Deadline,
        4 => Exhaustion::Cancelled,
        5 => Exhaustion::Shutdown,
        _ => Exhaustion::NodeBudget,
    }
}

/// The deepening start budget for a spec: the combinatorial bound for the
/// complete instance, the capacity bound otherwise. Shared by the
/// deprecated `solve_optimal*` family and the [`crate::api`] engines so
/// both explore the identical budget ladder.
pub(crate) fn deepening_start(u: &TileUniverse, spec: &CoverSpec) -> u32 {
    let n = u.ring().n();
    let base = spec.capacity_lower_bound(u.ring());
    if spec.demand == CoverSpec::complete(n).demand {
        combinatorial_lower_bound(n).max(base) as u32
    } else {
        base as u32
    }
}

/// Optimal covering by iterative deepening from the combinatorial lower
/// bound. Returns the tiles and the optimum, or `None` if the node limit
/// was hit before a conclusion.
#[deprecated(
    since = "0.2.0",
    note = "use the `SolveRequest`/`Engine` API in `cyclecover_solver::api` \
            (engine \"bitset\" with `Objective::FindOptimal`)"
)]
pub fn solve_optimal(u: &TileUniverse, max_nodes: u64) -> Option<(Vec<Tile>, u32, Stats)> {
    let spec = CoverSpec::complete(u.ring().n());
    solve_optimal_spec_with(u, &spec, budget_search_off, max_nodes)
}

/// [`budget_search`] pinned to [`SymmetryMode::Off`] with the memo
/// disabled — the deprecated free functions' historical search, bit for
/// bit.
fn budget_search_off(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    lim: &RunLimits,
) -> (Outcome, Stats, Option<Exhaustion>) {
    budget_search(u, spec, budget, lim, SymmetryMode::Off, None)
}

/// Optimal covering for an arbitrary [`CoverSpec`], by iterative deepening
/// from the spec's capacity bound.
#[deprecated(
    since = "0.2.0",
    note = "use the `SolveRequest`/`Engine` API in `cyclecover_solver::api` \
            (engine \"bitset\" with `Objective::FindOptimal`)"
)]
pub fn solve_optimal_spec(
    u: &TileUniverse,
    spec: &CoverSpec,
    max_nodes: u64,
) -> Option<(Vec<Tile>, u32, Stats)> {
    solve_optimal_spec_with(u, spec, budget_search_off, max_nodes)
}

/// [`solve_optimal_spec`] with every deepening step run on the parallel
/// frontier search over `threads` threads.
#[deprecated(
    since = "0.2.0",
    note = "use the `SolveRequest`/`Engine` API in `cyclecover_solver::api` \
            (engine \"bitset-parallel\" with `Objective::FindOptimal`)"
)]
pub fn solve_optimal_spec_parallel(
    u: &TileUniverse,
    spec: &CoverSpec,
    max_nodes: u64,
    threads: usize,
) -> Option<(Vec<Tile>, u32, Stats)> {
    solve_optimal_spec_with(
        u,
        spec,
        |u, spec, budget, lim| {
            budget_search_parallel(
                u,
                spec,
                budget,
                lim,
                threads,
                DEFAULT_PREFIX_PER_THREAD,
                SymmetryMode::Off,
                None,
            )
        },
        max_nodes,
    )
}

fn solve_optimal_spec_with(
    u: &TileUniverse,
    spec: &CoverSpec,
    run: impl Fn(&TileUniverse, &CoverSpec, u32, &RunLimits) -> (Outcome, Stats, Option<Exhaustion>),
    max_nodes: u64,
) -> Option<(Vec<Tile>, u32, Stats)> {
    let lim = RunLimits::nodes_only(max_nodes);
    let mut budget = deepening_start(u, spec);
    let mut total = Stats::default();
    loop {
        let (outcome, stats, _) = run(u, spec, budget, &lim);
        total.absorb(stats);
        match outcome {
            Outcome::Feasible(idx) => {
                let tiles = idx.into_iter().map(|i| u.tile(i).clone()).collect();
                return Some((tiles, budget, total));
            }
            Outcome::Infeasible => budget += 1,
            Outcome::NodeLimit => return None,
        }
    }
}

/// Certifies that no covering with at most `budget` tiles exists.
/// Returns `Some(true)` for a completed infeasibility proof, `Some(false)`
/// if a covering was found, `None` if the node limit was hit.
#[deprecated(
    since = "0.2.0",
    note = "use the `SolveRequest`/`Engine` API in `cyclecover_solver::api` \
            (`Objective::ProveInfeasible`)"
)]
pub fn prove_infeasible(u: &TileUniverse, budget: u32, max_nodes: u64) -> Option<bool> {
    let spec = CoverSpec::complete(u.ring().n());
    match budget_search_off(u, &spec, budget, &RunLimits::nodes_only(max_nodes)).0 {
        Outcome::Infeasible => Some(true),
        Outcome::Feasible(_) => Some(false),
        Outcome::NodeLimit => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound::rho_formula;
    use cyclecover_graph::EdgeMultiset;
    use cyclecover_ring::Ring;

    // Kernel-level wrappers over the engine internals, mirroring the
    // deprecated free functions' signatures (the public path is covered
    // by `api`'s tests and `tests/engine_conformance.rs`).
    fn within(u: &TileUniverse, spec: &CoverSpec, budget: u32, max_nodes: u64) -> (Outcome, Stats) {
        let (o, s, _) = budget_search_off(u, spec, budget, &RunLimits::nodes_only(max_nodes));
        (o, s)
    }

    fn within_sym(
        u: &TileUniverse,
        spec: &CoverSpec,
        budget: u32,
        max_nodes: u64,
        sym: SymmetryMode,
    ) -> (Outcome, Stats) {
        let (o, s, _) = budget_search(
            u,
            spec,
            budget,
            &RunLimits::nodes_only(max_nodes),
            sym,
            None,
        );
        (o, s)
    }

    fn within_memo(
        u: &TileUniverse,
        spec: &CoverSpec,
        budget: u32,
        max_nodes: u64,
        sym: SymmetryMode,
    ) -> (Outcome, Stats) {
        let store = MemoStore::new(u, DEFAULT_MEMO_BYTES);
        let (o, s, _) = budget_search(
            u,
            spec,
            budget,
            &RunLimits::nodes_only(max_nodes),
            sym,
            store.as_ref(),
        );
        (o, s)
    }

    fn within_legacy(
        u: &TileUniverse,
        spec: &CoverSpec,
        budget: u32,
        max_nodes: u64,
    ) -> (Outcome, Stats) {
        let (o, s, _) = budget_search_legacy(u, spec, budget, &RunLimits::nodes_only(max_nodes));
        (o, s)
    }

    fn within_parallel(
        u: &TileUniverse,
        spec: &CoverSpec,
        budget: u32,
        max_nodes: u64,
        threads: usize,
    ) -> (Outcome, Stats) {
        let (o, s, _) = budget_search_parallel(
            u,
            spec,
            budget,
            &RunLimits::nodes_only(max_nodes),
            threads,
            DEFAULT_PREFIX_PER_THREAD,
            SymmetryMode::Off,
            None,
        );
        (o, s)
    }

    fn optimal_spec(
        u: &TileUniverse,
        spec: &CoverSpec,
        max_nodes: u64,
    ) -> Option<(Vec<Tile>, u32, Stats)> {
        solve_optimal_spec_with(u, spec, budget_search_off, max_nodes)
    }

    fn optimal(u: &TileUniverse, max_nodes: u64) -> Option<(Vec<Tile>, u32, Stats)> {
        optimal_spec(u, &CoverSpec::complete(u.ring().n()), max_nodes)
    }

    fn infeasible(u: &TileUniverse, budget: u32, max_nodes: u64) -> Option<bool> {
        match within(u, &CoverSpec::complete(u.ring().n()), budget, max_nodes).0 {
            Outcome::Infeasible => Some(true),
            Outcome::Feasible(_) => Some(false),
            Outcome::NodeLimit => None,
        }
    }

    fn assert_valid_cover(u: &TileUniverse, tiles: &[Tile], lambda: u32) {
        let ring = u.ring();
        let n = ring.n() as usize;
        let mut cover = EdgeMultiset::new(n);
        for t in tiles {
            for c in t.chords(ring) {
                cover.insert(c.to_edge());
            }
        }
        assert!(cover.covers_complete(lambda), "not a {lambda}-covering");
    }

    #[test]
    fn optimal_k4_matches_paper_example() {
        let u = TileUniverse::new(Ring::new(4), 4);
        let (tiles, opt, _) = optimal(&u, 1_000_000).expect("solved");
        assert_eq!(opt, 3, "rho(4) = 3 per the paper's example");
        assert_valid_cover(&u, &tiles, 1);
    }

    #[test]
    fn optimal_small_odd_matches_theorem1() {
        for n in [3u32, 5, 7, 9] {
            let u = TileUniverse::new(Ring::new(n), n as usize);
            let (tiles, opt, _) = optimal(&u, 50_000_000).expect("solved");
            assert_eq!(opt as u64, rho_formula(n), "rho({n})");
            assert_valid_cover(&u, &tiles, 1);
        }
    }

    #[test]
    fn optimal_small_even_matches_theorem2() {
        for n in [6u32, 8] {
            let u = TileUniverse::new(Ring::new(n), n as usize);
            let (tiles, opt, _) = optimal(&u, 50_000_000).expect("solved");
            assert_eq!(opt as u64, rho_formula(n), "rho({n})");
            assert_valid_cover(&u, &tiles, 1);
        }
    }

    /// The `+1` of Theorem 2 for even `p`: n = 8 (p = 4) — capacity bound
    /// says 8, the paper says 9; certify 8 is infeasible.
    #[test]
    fn n8_infeasible_at_capacity_bound() {
        let u = TileUniverse::new(Ring::new(8), 8);
        assert_eq!(infeasible(&u, 8, 50_000_000), Some(true));
        assert_eq!(infeasible(&u, 9, 50_000_000), Some(false));
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        for n in [6u32, 7, 8] {
            let u = TileUniverse::new(Ring::new(n), n as usize);
            let spec = CoverSpec::complete(n);
            let budget = rho_formula(n) as u32;
            let (seq, _) = within(&u, &spec, budget - 1, 100_000_000);
            let (par, _) = within_parallel(&u, &spec, budget - 1, 100_000_000, 4);
            assert_eq!(seq, Outcome::Infeasible, "n={n}");
            assert_eq!(par, Outcome::Infeasible, "n={n}");
            let (seq_ok, _) = within(&u, &spec, budget, 100_000_000);
            let (par_ok, _) = within_parallel(&u, &spec, budget, 100_000_000, 4);
            assert!(matches!(seq_ok, Outcome::Feasible(_)), "n={n}");
            assert!(matches!(par_ok, Outcome::Feasible(_)), "n={n}");
        }
    }

    /// λ-fold: rho_2(6) — the capacity bound is 9 (vs 2·rho(6) = 10);
    /// the solver settles what copy-concatenation cannot.
    #[test]
    fn lambda_fold_small() {
        let n = 6u32;
        let u = TileUniverse::new(Ring::new(n), n as usize);
        let spec = CoverSpec::lambda_fold(n, 2);
        let (tiles, opt, _) = optimal_spec(&u, &spec, 200_000_000).expect("solved");
        assert_valid_cover(&u, &tiles, 2);
        assert!(opt >= spec.capacity_lower_bound(Ring::new(n)) as u32);
        assert!(opt <= 2 * rho_formula(n) as u32);
    }

    /// Subset spec: cover only a star's edges (plus whatever tiles bring).
    #[test]
    fn subset_spec_star() {
        let n = 7u32;
        let u = TileUniverse::new(Ring::new(n), 4);
        let star: Vec<Edge> = (1..n).map(|v| Edge::new(0, v)).collect();
        let spec = CoverSpec::subset(n, &star);
        let (tiles, opt, _) = optimal_spec(&u, &spec, 100_000_000).expect("solved");
        // Each tile uses at most 2 chords at vertex 0: >= ceil(6/2) = 3.
        assert!(opt >= 3, "opt={opt}");
        let ring = Ring::new(n);
        let mut cov = EdgeMultiset::new(n as usize);
        for t in &tiles {
            for c in t.chords(ring) {
                cov.insert(c.to_edge());
            }
        }
        for e in &star {
            assert!(cov.count(*e) >= 1);
        }
    }

    #[test]
    fn node_limit_reports_inconclusive() {
        // n = 8 at budget 8: the capacity bound allows it (8 = ⌈p²/2⌉), so
        // infeasibility needs real search — a 10-node limit must trip.
        let u = TileUniverse::new(Ring::new(8), 8);
        let (outcome, stats) = within(&u, &CoverSpec::complete(8), 8, 10);
        assert_eq!(outcome, Outcome::NodeLimit);
        assert!(stats.nodes >= 10);
    }

    /// Restricting tiles to C3/C4 with shortest-path gaps must not change
    /// the odd optimum (Theorem 1's coverings have that shape).
    #[test]
    fn restricted_universe_still_optimal_for_odd() {
        let n = 7u32;
        let ring = Ring::new(n);
        let u = TileUniverse::with_max_gap(ring, 4, n / 2);
        let (tiles, opt, _) = optimal(&u, 10_000_000).expect("solved");
        assert_eq!(opt as u64, rho_formula(n));
        assert_valid_cover(&u, &tiles, 1);
        assert!(tiles.iter().all(|t| t.len() <= 4));
    }

    /// The bitset kernel and the legacy multiplicity kernel must reach the
    /// same verdict at every budget around the optimum.
    #[test]
    fn bitset_and_legacy_verdicts_agree() {
        for n in [5u32, 6, 7, 8] {
            let u = TileUniverse::new(Ring::new(n), n as usize);
            let spec = CoverSpec::complete(n);
            let rho = rho_formula(n) as u32;
            for budget in [rho - 1, rho, rho + 1] {
                let (fast, _) = within(&u, &spec, budget, 200_000_000);
                let (slow, _) = within_legacy(&u, &spec, budget, 200_000_000);
                let fast_ok = matches!(fast, Outcome::Feasible(_));
                let slow_ok = matches!(slow, Outcome::Feasible(_));
                assert_eq!(fast_ok, slow_ok, "n={n} budget={budget}");
                if fast_ok {
                    if let Outcome::Feasible(idx) = &fast {
                        let tiles: Vec<Tile> =
                            idx.iter().map(|&i| u.tile(i).clone()).collect();
                        assert_valid_cover(&u, &tiles, 1);
                    }
                } else {
                    assert_eq!(fast, Outcome::Infeasible, "n={n} budget={budget}");
                    assert_eq!(slow, Outcome::Infeasible, "n={n} budget={budget}");
                }
            }
        }
    }

    /// Dominance pruning must fire on real instances (it is the point of
    /// the candidate masks) and never flip a verdict — the agreement test
    /// above covers verdicts; this one pins the pruning being active.
    #[test]
    fn dominance_fires_on_even_instances() {
        let u = TileUniverse::new(Ring::new(8), 8);
        let (outcome, stats) = within(&u, &CoverSpec::complete(8), 8, 50_000_000);
        assert_eq!(outcome, Outcome::Infeasible);
        assert!(stats.dominated > 0, "dominance never fired: {stats:?}");
    }

    /// All three symmetry modes reach identical verdicts around the
    /// optimum; the reduced modes never expand more nodes than `Off` on
    /// the hard even refutations.
    #[test]
    fn symmetry_modes_agree_on_verdicts() {
        for n in [6u32, 7, 8] {
            let u = TileUniverse::new(Ring::new(n), n as usize);
            let spec = CoverSpec::complete(n);
            let rho = rho_formula(n) as u32;
            for budget in [rho - 1, rho] {
                let (off, off_stats) = within(&u, &spec, budget, 200_000_000);
                for sym in [SymmetryMode::Root, SymmetryMode::Full] {
                    let (got, stats) = within_sym(&u, &spec, budget, 200_000_000, sym);
                    assert_eq!(
                        matches!(got, Outcome::Feasible(_)),
                        matches!(off, Outcome::Feasible(_)),
                        "n={n} budget={budget} {sym:?}"
                    );
                    if let Outcome::Feasible(idx) = &got {
                        let tiles: Vec<Tile> = idx.iter().map(|&i| u.tile(i).clone()).collect();
                        assert_valid_cover(&u, &tiles, 1);
                        assert_eq!(idx.len() as u32, budget.min(rho), "n={n} {sym:?}");
                    }
                    if budget == rho - 1 && n == 8 {
                        assert!(
                            stats.nodes <= off_stats.nodes,
                            "n={n} {sym:?}: {} > {} nodes",
                            stats.nodes,
                            off_stats.nodes
                        );
                    }
                }
            }
        }
    }

    /// The capacity-tight even refutations collapse to one-node proofs
    /// under the parity (T-join) bound: every vertex of `K_8` (and
    /// `K_12`) has odd degree while the budget leaves zero slack.
    #[test]
    fn parity_bound_refutes_tight_even_budgets_at_the_root() {
        for (n, tight) in [(8u32, 8u32), (12, 18)] {
            let u = TileUniverse::new(Ring::new(n), n as usize);
            let spec = CoverSpec::complete(n);
            let (off, off_stats) = within(&u, &spec, tight, 200_000);
            let (root, root_stats) = within_sym(&u, &spec, tight, 200_000, SymmetryMode::Root);
            assert_eq!(root, Outcome::Infeasible, "n={n}");
            assert_eq!(root_stats.nodes, 1, "n={n}: parity prunes the root");
            if n == 8 {
                // Off needs the full 97,465-node exhaustive proof; the
                // 200k cap is enough for it but pins the contrast.
                assert_eq!(off, Outcome::Infeasible);
                assert_eq!(off_stats.nodes, 97_465, "BENCH_1 baseline drifted");
            } else {
                // n = 12: off exceeds any reasonable cap (> 30M nodes).
                assert_eq!(off, Outcome::NodeLimit);
            }
        }
    }

    /// The orbit filter itself fires where a real branch survives the
    /// bounds: the n = 8 budget-9 witness search reduces its root by the
    /// diameter-chord stabilizer (order 4) and skips mirrored candidates.
    #[test]
    fn symmetry_root_filters_witness_search() {
        let u = TileUniverse::new(Ring::new(8), 8);
        let spec = CoverSpec::complete(8);
        let (off, off_stats) = within(&u, &spec, 9, 50_000_000);
        let (root, root_stats) = within_sym(&u, &spec, 9, 50_000_000, SymmetryMode::Root);
        assert!(matches!(off, Outcome::Feasible(_)));
        assert!(matches!(root, Outcome::Feasible(_)));
        assert_eq!(off_stats.sym_factor, 1);
        assert_eq!(off_stats.sym_pruned, 0);
        assert_eq!(root_stats.sym_factor, 4, "diameter-chord stabilizer");
        assert!(root_stats.sym_pruned > 0, "{root_stats:?}");
        assert!(
            root_stats.nodes <= off_stats.nodes,
            "{} vs {}",
            root_stats.nodes,
            off_stats.nodes
        );
    }

    /// Frontier-parallel search honors the symmetry mode and agrees with
    /// the sequential verdicts.
    #[test]
    fn symmetry_parallel_agrees_with_sequential() {
        let u = TileUniverse::new(Ring::new(8), 8);
        let spec = CoverSpec::complete(8);
        for sym in [SymmetryMode::Root, SymmetryMode::Full] {
            let (seq, seq_stats) = within_sym(&u, &spec, 8, 100_000_000, sym);
            let (par, par_stats, _) = budget_search_parallel(
                &u,
                &spec,
                8,
                &RunLimits::nodes_only(100_000_000),
                4,
                DEFAULT_PREFIX_PER_THREAD,
                sym,
                None,
            );
            assert_eq!(seq, Outcome::Infeasible, "{sym:?}");
            assert_eq!(par, Outcome::Infeasible, "{sym:?}");
            // Both prune the capacity-tight root via the parity bound.
            assert_eq!(seq_stats.nodes, 1, "{sym:?}");
            assert_eq!(par_stats.nodes, 1, "{sym:?}");
            let (par_ok, ok_stats, _) = budget_search_parallel(
                &u,
                &spec,
                9,
                &RunLimits::nodes_only(100_000_000),
                4,
                DEFAULT_PREFIX_PER_THREAD,
                sym,
                None,
            );
            assert!(matches!(par_ok, Outcome::Feasible(_)), "{sym:?}");
            // The witness search's frontier expansion reduced its root by
            // the order-4 diameter-chord stabilizer.
            assert_eq!(ok_stats.sym_factor, 4, "{sym:?}");
        }
    }

    /// The residual-state memo prunes a real refutation without changing
    /// its verdict: the n = 8 budget-8 proof (97,465 nodes memo-off,
    /// bit-exact with BENCH_1) completes in strictly fewer nodes with
    /// the memo on, reporting its hits and resident entries.
    #[test]
    fn memo_prunes_the_even_refutation() {
        let u = TileUniverse::new(Ring::new(8), 8);
        let spec = CoverSpec::complete(8);
        let (plain, plain_stats) = within_sym(&u, &spec, 8, 50_000_000, SymmetryMode::Off);
        let (memoed, memo_stats) = within_memo(&u, &spec, 8, 50_000_000, SymmetryMode::Off);
        assert_eq!(plain, Outcome::Infeasible);
        assert_eq!(memoed, Outcome::Infeasible, "memo flipped a verdict");
        assert_eq!(plain_stats.nodes, 97_465, "BENCH_1 baseline drifted");
        assert_eq!(plain_stats.memo_hits, 0);
        assert_eq!(plain_stats.memo_entries, 0);
        assert!(
            memo_stats.nodes < plain_stats.nodes,
            "memo never pruned: {memo_stats:?}"
        );
        assert!(memo_stats.memo_hits > 0, "{memo_stats:?}");
        assert!(memo_stats.memo_entries > 0, "{memo_stats:?}");
    }

    /// Canonical residual-state keying engages under `Full`: the ρ(10)
    /// witness search with the memo on prunes nodes whose uncovered set
    /// matched only after dihedral canonicalization (`canon_pruned`),
    /// lands under the `Root` memo node count, and still finds a valid
    /// covering. This is the ROADMAP's setwise/canonical-prefix open
    /// item doing real work on the workspace's hardest row.
    #[test]
    fn canonical_memo_cuts_the_rho10_witness() {
        let u = TileUniverse::new(Ring::new(10), 10);
        let spec = CoverSpec::complete(10);
        let (root, root_stats) = within_memo(&u, &spec, 13, 50_000_000, SymmetryMode::Root);
        let (full, full_stats) = within_memo(&u, &spec, 13, 50_000_000, SymmetryMode::Full);
        assert!(matches!(root, Outcome::Feasible(_)));
        let Outcome::Feasible(idx) = &full else {
            panic!("full+memo lost the witness: {full_stats:?}");
        };
        let tiles: Vec<Tile> = idx.iter().map(|&i| u.tile(i).clone()).collect();
        assert_valid_cover(&u, &tiles, 1);
        assert!(
            root_stats.nodes <= 400_000,
            "rho(10) acceptance ceiling: {root_stats:?}"
        );
        assert!(full_stats.canon_pruned > 0, "{full_stats:?}");
        assert!(
            full_stats.nodes < root_stats.nodes,
            "canonical keys under Full should out-prune Root: {} vs {}",
            full_stats.nodes,
            root_stats.nodes
        );
    }

    /// A tiny memo budget degrades pruning power, never correctness:
    /// the verdict holds at any table size, and the resident entry count
    /// respects the floor-sized table.
    #[test]
    fn memo_budget_only_trades_pruning() {
        let u = TileUniverse::new(Ring::new(8), 8);
        let spec = CoverSpec::complete(8);
        let lim = RunLimits::nodes_only(50_000_000);
        let store = MemoStore::new(&u, 0);
        let (o, s, _) = budget_search(&u, &spec, 8, &lim, SymmetryMode::Off, store.as_ref());
        assert_eq!(o, Outcome::Infeasible);
        assert!(s.nodes <= 97_465, "worse than memo-free: {s:?}");
        assert!(s.memo_entries > 0, "{s:?}");
    }

    /// Asymmetric (subset) specs degrade gracefully: the spec-preserving
    /// subgroup collapses, no filtering happens, verdicts are unchanged.
    #[test]
    fn symmetry_degrades_on_asymmetric_specs() {
        let n = 7u32;
        let u = TileUniverse::new(Ring::new(n), 4);
        let requests: Vec<Edge> = vec![Edge::new(0, 2), Edge::new(1, 4), Edge::new(2, 6)];
        let spec = CoverSpec::subset(n, &requests);
        for budget in 1..=3u32 {
            let (off, _) = within(&u, &spec, budget, 10_000_000);
            let (root, stats) = within_sym(&u, &spec, budget, 10_000_000, SymmetryMode::Root);
            assert_eq!(
                matches!(off, Outcome::Feasible(_)),
                matches!(root, Outcome::Feasible(_)),
                "budget={budget}"
            );
            assert_eq!(stats.sym_pruned, 0, "nothing to filter by");
        }
    }

    /// λ-fold specs stay fully symmetric: the multiplicity kernel accepts
    /// orbit filtering — including `Full`'s every-depth filtering on the
    /// non-sorting deep path (λ-fold searches exceed the depth-4 sorting
    /// cutoff) — and agrees with the unreduced search.
    #[test]
    fn symmetry_applies_to_lambda_fold() {
        let n = 6u32;
        let u = TileUniverse::new(Ring::new(n), n as usize);
        let spec = CoverSpec::lambda_fold(n, 2);
        let lb = spec.capacity_lower_bound(Ring::new(n)) as u32;
        for budget in [lb - 1, lb] {
            let (off, _) = within(&u, &spec, budget, 200_000_000);
            for sym in [SymmetryMode::Root, SymmetryMode::Full] {
                let (got, _) = within_sym(&u, &spec, budget, 200_000_000, sym);
                assert_eq!(
                    matches!(off, Outcome::Feasible(_)),
                    matches!(got, Outcome::Feasible(_)),
                    "budget={budget} {sym:?}"
                );
            }
        }
    }
}
