//! The unified solver surface: [`Problem`] + [`SolveRequest`] in,
//! [`Solution`] out, through any registered [`Engine`].
//!
//! Every experiment in the paper is an instance of one question — *cover
//! this demand spec on `C_n` within this budget, and certify it* — so the
//! whole solver stack sits behind a single typed request/response
//! boundary:
//!
//! * [`Problem`] — what to solve: the ring, a [`CoverSpec`], and the
//!   precomputed [`TileUniverse`] the search runs on;
//! * [`SolveRequest`] — what kind of answer is wanted (an [`Objective`]),
//!   under which resource limits (node budget, wall-clock deadline, a
//!   shareable [`CancelToken`]), [`ExecPolicy`], and [`SymmetryMode`]
//!   (dihedral orbit reduction, default `Root`; certificates record the
//!   applied symmetry factor);
//! * [`Solution`] — the covering (if any), an [`Optimality`] certificate
//!   saying exactly what was proved, and unified [`Stats`].
//!
//! Engines are registered by name in [`engines`] / [`engine_by_name`] so
//! CLIs, benches, and services select them with a string:
//!
//! | name | substrate |
//! |------|-----------|
//! | `bitset` | word-packed branch & bound (sequential; honors `ExecPolicy::Parallel`) |
//! | `bitset-parallel` | the same search drained over a rayon frontier |
//! | `legacy` | the multiplicity-counter reference search |
//! | `dlx` | Dancing-Links exact partition (odd `n`, complete spec) |
//! | `greedy` | max-coverage greedy |
//! | `greedy-improve` | greedy + drop/merge local search |
//! | `anneal` | greedy + simulated annealing + local search |
//!
//! ```
//! use cyclecover_solver::api::{engine_by_name, Optimality, Problem, SolveRequest};
//!
//! // Certify the paper's worked example, rho(4) = 3, end to end.
//! let problem = Problem::complete(4);
//! let engine = engine_by_name("bitset").unwrap();
//! let solution = engine.solve(&problem, &SolveRequest::find_optimal());
//! assert!(matches!(solution.optimality(), Optimality::Optimal { .. }));
//! assert_eq!(solution.covering().unwrap().len(), 3);
//! ```

use crate::anneal::{anneal_covering, AnnealParams};
use crate::bnb::{self, CoverSpec, MemoStore, Outcome, RunLimits, DEFAULT_MEMO_BYTES};
pub use crate::bnb::SymmetryMode;
use crate::greedy::greedy_cover;
use crate::improve::improve_covering;
use crate::TileUniverse;
use cyclecover_ring::{Ring, Tile};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Problem
// ---------------------------------------------------------------------------

/// A covering problem: the ring, the demand spec, and the precomputed tile
/// universe every engine searches over.
///
/// The universe is held behind an [`Arc`] so one `Problem` can be solved
/// repeatedly (and by several engines), and so *many* problems — distinct
/// specs over the same ring — can share one enumeration. Universe
/// construction is the expensive, spec-independent part of a solve; a
/// batch service caches universes by `(n, max_len, max_gap)` and builds
/// each problem with [`Problem::shared`].
pub struct Problem {
    universe: Arc<TileUniverse>,
    spec: CoverSpec,
}

impl Problem {
    /// A problem over an explicit (exclusively owned) universe and spec.
    ///
    /// # Panics
    /// Panics if the spec's demand vector is not sized for the universe's
    /// ring (`n(n−1)/2` entries).
    pub fn new(universe: TileUniverse, spec: CoverSpec) -> Self {
        Problem::shared(Arc::new(universe), spec)
    }

    /// A problem over a shared universe — the zero-copy path for callers
    /// (caches, services) that solve many specs over one enumeration.
    ///
    /// # Panics
    /// Panics if the spec's demand vector is not sized for the universe's
    /// ring (`n(n−1)/2` entries).
    pub fn shared(universe: Arc<TileUniverse>, spec: CoverSpec) -> Self {
        let n = universe.ring().n() as usize;
        assert_eq!(
            spec.demand.len(),
            n * (n - 1) / 2,
            "demand vector sized for K_{n}"
        );
        Problem { universe, spec }
    }

    /// The standard instance: cover every request of `K_n` once, over the
    /// full tile universe (`max_len = n`) — the `ρ(n)` workload.
    pub fn complete(n: u32) -> Self {
        Problem::new(
            TileUniverse::new(Ring::new(n), n as usize),
            CoverSpec::complete(n),
        )
    }

    /// The λ-fold instance over the full tile universe.
    pub fn lambda_fold(n: u32, lambda: u32) -> Self {
        Problem::new(
            TileUniverse::new(Ring::new(n), n as usize),
            CoverSpec::lambda_fold(n, lambda),
        )
    }

    /// The ring the problem lives on.
    pub fn ring(&self) -> Ring {
        self.universe.ring()
    }

    /// The tile universe.
    pub fn universe(&self) -> &TileUniverse {
        &self.universe
    }

    /// The shared handle to the tile universe (clone it to build further
    /// problems over the same enumeration without copying).
    pub fn universe_arc(&self) -> &Arc<TileUniverse> {
        &self.universe
    }

    /// The demand spec.
    pub fn spec(&self) -> &CoverSpec {
        &self.spec
    }

    /// Whether the spec demands every request of `K_n` exactly once.
    pub fn is_complete_unit(&self) -> bool {
        self.spec.demand.iter().all(|&d| d == 1)
    }
}

// ---------------------------------------------------------------------------
// SolveRequest
// ---------------------------------------------------------------------------

/// What kind of answer a [`SolveRequest`] asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Find a minimum covering and certify its optimality.
    FindOptimal,
    /// Find any covering using at most this many tiles.
    WithinBudget(u32),
    /// Prove that no covering with at most this many tiles exists.
    ProveInfeasible(u32),
}

/// How an engine may spend its CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Single-threaded depth-first search.
    Sequential,
    /// Frontier-parallel search: the tree is expanded breadth-first into
    /// `threads × 2^prefix_depth` independent prefixes, drained on a
    /// work-sharing rayon scope. `threads = 0` uses the available
    /// parallelism.
    Parallel {
        /// Worker threads (`0` = available parallelism).
        threads: usize,
        /// log₂ of the frontier prefixes expanded per thread.
        prefix_depth: u32,
    },
    /// Let the engine pick (engines default to their natural mode).
    Auto,
}

impl ExecPolicy {
    /// The default parallel policy: all cores, 8 prefixes per thread.
    pub fn parallel() -> Self {
        ExecPolicy::Parallel {
            threads: 0,
            prefix_depth: 3,
        }
    }
}

/// Why a [`CancelToken`] was cancelled — carried down the token tree so
/// a kernel stopped through an inherited cancellation can report the
/// ancestor's motive on the wire instead of a generic "cancelled".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// Plain cooperative cancellation (superseded, no longer wanted).
    Explicit,
    /// The owning service is shutting down; in-flight work should stop
    /// and queued work will be reported unstarted.
    Shutdown,
    /// An ancestor's wall-clock deadline was enforced by cancellation
    /// (distinct from a kernel's *own* deadline check).
    Deadline,
}

impl CancelReason {
    /// The [`Exhaustion`] this cancellation reads as on the wire.
    pub fn as_exhaustion(self) -> Exhaustion {
        match self {
            CancelReason::Explicit => Exhaustion::Cancelled,
            CancelReason::Shutdown => Exhaustion::Shutdown,
            CancelReason::Deadline => Exhaustion::Deadline,
        }
    }

    fn encode(self) -> u8 {
        match self {
            CancelReason::Explicit => 1,
            CancelReason::Shutdown => 2,
            CancelReason::Deadline => 3,
        }
    }

    fn decode(code: u8) -> Option<CancelReason> {
        match code {
            1 => Some(CancelReason::Explicit),
            2 => Some(CancelReason::Shutdown),
            3 => Some(CancelReason::Deadline),
            _ => None,
        }
    }
}

/// A shareable cooperative-cancellation flag, arranged in a tree.
///
/// Clones share one flag: hand a clone to a request (or several), keep
/// one, and [`CancelToken::cancel`] stops every search holding it within
/// ~4096 expanded nodes per worker.
///
/// [`CancelToken::child`] derives a *subordinate* token: cancelling the
/// parent cancels every descendant (transitively), while cancelling a
/// child leaves its parent — and its siblings — running. This is the
/// primitive a batch service needs: one root token per batch, one child
/// per in-flight job, so an expired or superseded batch aborts all of its
/// kernels without disturbing unrelated work. Each token still reads as a
/// single `AtomicBool` in the search hot loop — propagation happens
/// eagerly at `cancel()` time, not on every check.
///
/// Cancellation carries a [`CancelReason`] down the tree: a child
/// cancelled through its parent inherits the parent's reason, so the
/// wire document can distinguish a batch shutdown from a job-level
/// cancel or an ancestor-enforced deadline.
///
/// ```
/// use cyclecover_solver::api::{CancelReason, CancelToken};
///
/// let batch = CancelToken::new();
/// let job_a = batch.child();
/// let job_b = batch.child();
/// job_a.cancel();                  // superseded: only job A stops
/// assert!(job_a.is_cancelled() && !job_b.is_cancelled());
/// batch.cancel_with(CancelReason::Shutdown); // batch drain: all stop
/// assert!(job_b.is_cancelled() && batch.is_cancelled());
/// assert_eq!(job_b.cancel_reason(), Some(CancelReason::Shutdown));
/// assert_eq!(job_a.cancel_reason(), Some(CancelReason::Explicit));
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    flag: AtomicBool,
    /// Encoded [`CancelReason`] (0 = not cancelled). Written once,
    /// before `flag` is raised, so any reader that observes the flag
    /// also observes a reason.
    reason: AtomicU8,
    /// Children to propagate `cancel()` into; weak so dropped subtrees
    /// don't accumulate (dead entries are purged on cancellation).
    children: Mutex<Vec<Weak<CancelInner>>>,
}

impl CancelInner {
    fn cancel(&self, reason: CancelReason) {
        // First writer wins: a token cancelled twice keeps its original
        // motive. Reason is published before the flag so `flag == true`
        // implies a readable reason.
        let _ = self.reason.compare_exchange(
            0,
            reason.encode(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.flag.store(true, Ordering::Relaxed);
        // Detach the children before recursing: once cancelled, they can
        // never be "un-cancelled", so the edges carry no more information.
        let children = std::mem::take(&mut *self.children.lock().expect("cancel tree poisoned"));
        for child in children {
            if let Some(child) = child.upgrade() {
                child.cancel(reason);
            }
        }
    }
}

impl CancelToken {
    /// A fresh, un-cancelled root token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of this token and every token derived from
    /// it via [`CancelToken::child`] (idempotent, visible to all clones),
    /// with reason [`CancelReason::Explicit`].
    pub fn cancel(&self) {
        self.inner.cancel(CancelReason::Explicit);
    }

    /// Like [`CancelToken::cancel`], with an explicit reason. Descendants
    /// inherit the reason; a token cancelled twice keeps the first reason.
    pub fn cancel_with(&self, reason: CancelReason) {
        self.inner.cancel(reason);
    }

    /// Whether cancellation has been requested (directly, or through an
    /// ancestor).
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Relaxed)
    }

    /// Why this token was cancelled (`None` while it is live). A child
    /// cancelled through an ancestor reports the ancestor's reason.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        if !self.is_cancelled() {
            return None;
        }
        // The reason is published before the flag, so a raised flag
        // guarantees a decodable value; default to Explicit defensively.
        Some(
            CancelReason::decode(self.inner.reason.load(Ordering::Relaxed))
                .unwrap_or(CancelReason::Explicit),
        )
    }

    /// Derives a subordinate token: cancelled when `self` is cancelled,
    /// cancellable on its own without affecting `self`. A child of an
    /// already-cancelled token is born cancelled, inheriting the reason.
    pub fn child(&self) -> CancelToken {
        let child = CancelToken::new();
        // Hold the registry lock across the flag check so a concurrent
        // `cancel()` either sees the registration or the child sees the
        // flag — never neither.
        let mut children = self.inner.children.lock().expect("cancel tree poisoned");
        // Opportunistically drop edges to dead children, so a long-lived
        // never-cancelled root (a service handing out one child per job)
        // doesn't accumulate Weak entries — or the allocations they pin —
        // across its lifetime.
        children.retain(|w| w.strong_count() > 0);
        if self.inner.flag.load(Ordering::Relaxed) {
            child
                .inner
                .reason
                .store(self.inner.reason.load(Ordering::Relaxed), Ordering::Relaxed);
            child.inner.flag.store(true, Ordering::Relaxed);
        } else {
            children.push(Arc::downgrade(&child.inner));
        }
        drop(children);
        child
    }

    /// The raw flag, for the search hot loop.
    pub(crate) fn flag(&self) -> &AtomicBool {
        &self.inner.flag
    }
}

/// A builder-style solve request: objective, resource limits, execution
/// policy, symmetry reduction level. All limits default to "unlimited";
/// symmetry defaults to [`SymmetryMode::Root`] (exact engines explore one
/// root candidate per dihedral orbit and use the strengthened prefix
/// bound — set [`SymmetryMode::Off`] to reproduce pre-symmetry node
/// counts bit for bit).
///
/// ```
/// use cyclecover_solver::api::{engine_by_name, Optimality, Problem, SolveRequest};
/// use std::time::Duration;
///
/// // Probe a budget under explicit limits: at most 100k nodes, 2 s wall.
/// let request = SolveRequest::within_budget(5)
///     .with_max_nodes(100_000)
///     .with_deadline(Duration::from_secs(2));
/// let solution = engine_by_name("bitset")
///     .unwrap()
///     .solve(&Problem::complete(6), &request);
/// assert_eq!(*solution.optimality(), Optimality::Feasible);
/// assert_eq!(solution.size(), Some(5)); // ρ(6) = 5
/// ```
#[derive(Clone, Debug)]
pub struct SolveRequest {
    objective: Objective,
    max_nodes: u64,
    deadline: Option<Duration>,
    cancel: CancelToken,
    policy: ExecPolicy,
    symmetry: SymmetryMode,
    memo: bool,
    memo_bytes: usize,
    memo_store: Option<Arc<MemoStore>>,
    fallback: Vec<String>,
}

impl SolveRequest {
    /// A request with the given objective and default limits/policy.
    pub fn new(objective: Objective) -> Self {
        SolveRequest {
            objective,
            max_nodes: u64::MAX,
            deadline: None,
            cancel: CancelToken::new(),
            policy: ExecPolicy::Auto,
            symmetry: SymmetryMode::default(),
            memo: true,
            memo_bytes: DEFAULT_MEMO_BYTES,
            memo_store: None,
            fallback: Vec::new(),
        }
    }

    /// Shorthand for [`Objective::FindOptimal`].
    pub fn find_optimal() -> Self {
        Self::new(Objective::FindOptimal)
    }

    /// Shorthand for [`Objective::WithinBudget`].
    pub fn within_budget(budget: u32) -> Self {
        Self::new(Objective::WithinBudget(budget))
    }

    /// Shorthand for [`Objective::ProveInfeasible`].
    pub fn prove_infeasible(budget: u32) -> Self {
        Self::new(Objective::ProveInfeasible(budget))
    }

    /// Caps the number of search-tree nodes expanded by the whole
    /// request — across all workers and, for `FindOptimal`, across all
    /// deepening budgets.
    pub fn with_max_nodes(mut self, max_nodes: u64) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Sets a wall-clock deadline, measured from the moment an engine
    /// starts solving; every worker checks it about every 4096 nodes.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a shared cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Sets the execution policy.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the dihedral symmetry reduction level for exact engines
    /// (`bitset`, `bitset-parallel`). The `legacy` reference engine and
    /// the non-search engines ignore it.
    ///
    /// ```
    /// use cyclecover_solver::api::{engine_by_name, Problem, SolveRequest, SymmetryMode};
    ///
    /// // Off reproduces the pre-symmetry search; Root certifies the same
    /// // optimum while pruning mirror-image root branches.
    /// let engine = engine_by_name("bitset").unwrap();
    /// let problem = Problem::complete(6);
    /// let off = engine.solve(
    ///     &problem,
    ///     &SolveRequest::find_optimal().with_symmetry(SymmetryMode::Off),
    /// );
    /// let root = engine.solve(
    ///     &problem,
    ///     &SolveRequest::find_optimal().with_symmetry(SymmetryMode::Root),
    /// );
    /// assert_eq!(off.size(), root.size());
    /// assert!(root.stats().nodes <= off.stats().nodes);
    /// ```
    pub fn with_symmetry(mut self, symmetry: SymmetryMode) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Enables or disables the residual-state dominance memo of the
    /// exact unit-demand search (default: enabled). With the memo *and*
    /// symmetry off, the search reproduces the pre-memo node counts bit
    /// for bit — the CI exactness gate runs that configuration.
    ///
    /// ```
    /// use cyclecover_solver::api::{engine_by_name, Problem, SolveRequest};
    ///
    /// let engine = engine_by_name("bitset").unwrap();
    /// let problem = Problem::complete(8);
    /// let plain = engine.solve(
    ///     &problem,
    ///     &SolveRequest::prove_infeasible(8).with_memo(false),
    /// );
    /// let memoed = engine.solve(&problem, &SolveRequest::prove_infeasible(8));
    /// // Same verdict, never more nodes with the memo on.
    /// assert_eq!(plain.optimality(), memoed.optimality());
    /// assert!(memoed.stats().nodes <= plain.stats().nodes);
    /// ```
    pub fn with_memo(mut self, enabled: bool) -> Self {
        self.memo = enabled;
        self
    }

    /// Caps the memory the residual-state memo may claim, in bytes
    /// (default 32 MiB). The table stops growing at the budget and falls
    /// back to keep-the-stronger replacement — budgeted like the
    /// service layer's universe cache.
    pub fn with_memo_budget_bytes(mut self, bytes: usize) -> Self {
        self.memo_bytes = bytes;
        self
    }

    /// Attaches a **shared refutation store**: instead of building a
    /// private memo, the exact search probes and feeds `store`, reusing
    /// refutations recorded by earlier requests over the same tile
    /// universe (and contributing its own). A store built for a
    /// different universe is ignored — the search falls back to a
    /// private table — so attaching is always sound. Hits on entries
    /// another request recorded are reported as `shared_hits`.
    ///
    /// ```
    /// use cyclecover_solver::api::{engine_by_name, Problem, SolveRequest};
    /// use cyclecover_solver::bnb::{MemoStore, DEFAULT_MEMO_BYTES};
    /// use std::sync::Arc;
    ///
    /// let engine = engine_by_name("bitset").unwrap();
    /// let problem = Problem::complete(10);
    /// let store = Arc::new(
    ///     MemoStore::new(problem.universe(), DEFAULT_MEMO_BYTES).unwrap(),
    /// );
    /// let cold = engine.solve(
    ///     &problem,
    ///     &SolveRequest::find_optimal().with_memo_store(store.clone()),
    /// );
    /// // The identical request again, against the warm store: same
    /// // verdict, far fewer nodes, and the reuse is visible in the stats.
    /// let warm = engine.solve(
    ///     &problem,
    ///     &SolveRequest::find_optimal().with_memo_store(store),
    /// );
    /// assert_eq!(cold.optimality(), warm.optimality());
    /// assert!(warm.stats().nodes < cold.stats().nodes);
    /// assert!(warm.stats().shared_hits > 0);
    /// ```
    pub fn with_memo_store(mut self, store: Arc<MemoStore>) -> Self {
        self.memo_store = Some(store);
        self
    }

    /// Sets the degradation ladder: engine names a scheduler may fall
    /// back to, in order, when the primary engine exhausts its budget or
    /// fails. Engines themselves ignore this — only a scheduling layer
    /// (the solve service) walks the chain, and any answer produced by a
    /// rung carries an honest [`Degradation`] record.
    pub fn with_fallback<I, S>(mut self, chain: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.fallback = chain.into_iter().map(Into::into).collect();
        self
    }

    /// The objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The node budget (`u64::MAX` = unlimited).
    pub fn max_nodes(&self) -> u64 {
        self.max_nodes
    }

    /// The wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The cancellation token (clone it to keep a cancel handle).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The execution policy.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// The symmetry reduction level.
    pub fn symmetry(&self) -> SymmetryMode {
        self.symmetry
    }

    /// Whether the residual-state dominance memo is enabled.
    pub fn memo_enabled(&self) -> bool {
        self.memo
    }

    /// The memo's byte budget.
    pub fn memo_budget_bytes(&self) -> usize {
        self.memo_bytes
    }

    /// The attached shared refutation store, if any.
    pub fn memo_store(&self) -> Option<&Arc<MemoStore>> {
        self.memo_store.as_ref()
    }

    /// The degradation ladder (empty = no fallback).
    pub fn fallback(&self) -> &[String] {
        &self.fallback
    }

    /// The [`RunLimits`] this request imposes on a search starting `now`.
    fn run_limits(&self, start: Instant) -> RunLimits {
        RunLimits {
            max_nodes: self.max_nodes,
            deadline: self.deadline.map(|d| start + d),
            cancel: Some(self.cancel.clone()),
        }
    }

    /// The refutation store this request's exact search runs with: the
    /// attached shared store when one is set and fits `u`, a fresh
    /// private store otherwise, `None` with the memo off. One store
    /// serves the *whole* request — every deepening probe and every
    /// parallel worker — which is the first two sharing rings.
    fn build_store(&self, u: &TileUniverse) -> Option<Arc<MemoStore>> {
        if !self.memo {
            return None;
        }
        if let Some(shared) = &self.memo_store {
            if shared.compatible(u) {
                return Some(shared.clone());
            }
        }
        MemoStore::new(u, self.memo_bytes).map(Arc::new)
    }
}

// ---------------------------------------------------------------------------
// Solution
// ---------------------------------------------------------------------------

/// Why a search stopped without settling its objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exhaustion {
    /// The node budget ran out.
    NodeBudget,
    /// The wall-clock deadline passed.
    Deadline,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The [`CancelToken`] was cancelled by a service shutting down
    /// ([`CancelReason::Shutdown`]) — distinguished from a plain cancel
    /// so batch reports can separate drained-away work from superseded
    /// work.
    Shutdown,
    /// The engine's method has no further moves (a heuristic finished
    /// above the requested budget, or DLX found no exact partition).
    EngineLimit,
}

/// How a job failed terminally — no verdict, no covering, and no engine
/// answer to blame it on (see [`Optimality::Failed`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The engine panicked; the panic was caught at the service's
    /// isolation boundary and the worker survived.
    Panic,
    /// An internal service failure (e.g. an injected or real universe
    /// construction failure) prevented the solve from ever starting.
    Internal,
}

/// An honest record that a weaker engine answered than the one asked
/// for: the service walked the request's fallback chain after the
/// primary engine gave out. Attached to the final [`Solution`] so a
/// degraded answer is never mistaken for the primary engine's verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Degradation {
    /// Engine the job originally requested.
    pub from: String,
    /// Engine that produced the answer actually returned.
    pub to: String,
    /// Why the primary engine was abandoned.
    pub reason: DegradeReason,
}

/// Why a degradation ladder descended past the primary engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// The primary exhausted a resource limit without a verdict.
    Exhausted(Exhaustion),
    /// The primary panicked on every attempt it was given.
    Panicked,
}

/// How a [`Solution`] knows its covering size is a lower bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LowerBoundProof {
    /// The closed-form capacity/diameter bound already equals the
    /// covering size — no search was needed.
    CombinatorialBound {
        /// The bound's value.
        bound: u32,
    },
    /// An exhaustive search proved one-below-the-answer infeasible.
    ExhaustiveSearch {
        /// The budget proved infeasible (= optimum − 1).
        infeasible_budget: u32,
        /// Nodes the infeasibility proof expanded.
        nodes: u64,
        /// Order of the dihedral subgroup the proof's root branch was
        /// reduced by (1 = unreduced) — recorded so a symmetry-reduced
        /// refutation stays auditable: each explored root subtree stands
        /// for up to this many mirror images.
        symmetry_factor: u32,
    },
}

/// The certificate attached to a [`Solution`]: exactly what the engine
/// proved, never more.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Optimality {
    /// The covering is a minimum: a matching lower bound was established.
    Optimal {
        /// How the matching lower bound was proved.
        lower_bound_proof: LowerBoundProof,
    },
    /// A covering meeting the objective was found; optimality unknown.
    Feasible,
    /// Exhaustively proved: no covering within the requested budget.
    Infeasible,
    /// The engine stopped before reaching a verdict.
    BudgetExhausted {
        /// Which limit stopped it.
        reason: Exhaustion,
    },
    /// The solve failed terminally — the engine panicked (caught at the
    /// service isolation boundary) or an internal failure prevented it
    /// from running. Unlike [`Optimality::BudgetExhausted`] this is not a
    /// resource verdict: retrying with a bigger budget will not help.
    Failed {
        /// What failed.
        kind: FailureKind,
    },
}

/// Unified per-solve statistics.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Name of the engine that produced the solution.
    pub engine: &'static str,
    /// Search-tree nodes expanded (0 for non-search engines).
    pub nodes: u64,
    /// Nodes cut by the lower bounds.
    pub pruned: u64,
    /// Candidate branches skipped by dominance pruning.
    pub dominated: u64,
    /// Candidate branches skipped by dihedral orbit filtering (pointwise
    /// prefix stabilizer).
    pub sym_pruned: u64,
    /// Prunes owed to the canonical/setwise symmetry machinery of
    /// `SymmetryMode::Full` (canonical-state memo hits plus
    /// setwise-only sibling cuts).
    pub canon_pruned: u64,
    /// Nodes (and candidate children) pruned by the refutation store.
    pub memo_hits: u64,
    /// The subset of `memo_hits` landing on refutations another
    /// searcher recorded: an earlier deepening probe, another parallel
    /// worker, or — with a shared store attached — another request.
    pub shared_hits: u64,
    /// Residual states resident in the refutation store at the end of
    /// the solve (a store shared across probes, workers, or requests
    /// reports its total population).
    pub memo_entries: u64,
    /// Budget probes served by the slack-budgeted partition kernel —
    /// the certificate's provenance record of the low-slack route
    /// (0 = every probe ran plain branch & bound).
    pub partition_probes: u64,
    /// Order of the symmetry subgroup the root branch was reduced by
    /// (1 = no reduction).
    pub sym_factor: u32,
    /// Budgets tried (> 1 only for iterative-deepening `FindOptimal`).
    pub budgets_tried: u32,
    /// Engine dispatches that produced this solution: 1 for a direct
    /// solve; a retrying/degrading scheduler counts every attempt across
    /// every ladder rung (0 for [`Solution::unstarted`]).
    pub attempts: u32,
    /// Wall-clock time spent inside the engine.
    pub wall: Duration,
}

/// An engine's answer to a [`SolveRequest`].
#[derive(Clone, Debug)]
pub struct Solution {
    ring: Ring,
    covering: Option<Vec<Tile>>,
    optimality: Optimality,
    degraded: Option<Degradation>,
    cached: bool,
    stats: Stats,
}

impl Solution {
    /// The ring the problem was solved on (makes the solution
    /// self-contained for serialization).
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// The covering, when one was found.
    pub fn covering(&self) -> Option<&[Tile]> {
        self.covering.as_deref()
    }

    /// The certificate.
    pub fn optimality(&self) -> &Optimality {
        &self.optimality
    }

    /// The degradation record, when a scheduler answered with a weaker
    /// engine than requested (`None` for a direct engine answer).
    pub fn degraded(&self) -> Option<&Degradation> {
        self.degraded.as_ref()
    }

    /// Whether this answer was served from a persisted certificate cache
    /// instead of a kernel run (`false` for every freshly-computed
    /// solution). Cached answers carry all-zero search statistics: no
    /// kernel expanded a single node to produce them.
    pub fn cached(&self) -> bool {
        self.cached
    }

    /// The unified statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Covering size, when one was found.
    pub fn size(&self) -> Option<usize> {
        self.covering.as_ref().map(Vec::len)
    }

    /// A solution for a request that was *never started*: no covering, a
    /// [`Optimality::BudgetExhausted`] verdict with the given reason, and
    /// all-zero stats attributed to `engine` (a scheduler rejecting an
    /// already-expired job reports itself, e.g. `"service"`, so the
    /// document stays honest about no kernel having run).
    pub fn unstarted(ring: Ring, reason: Exhaustion, engine: &'static str) -> Solution {
        Solution {
            ring,
            covering: None,
            optimality: Optimality::BudgetExhausted { reason },
            degraded: None,
            cached: false,
            stats: Stats {
                engine,
                nodes: 0,
                pruned: 0,
                dominated: 0,
                sym_pruned: 0,
                canon_pruned: 0,
                memo_hits: 0,
                shared_hits: 0,
                memo_entries: 0,
                partition_probes: 0,
                sym_factor: 1,
                budgets_tried: 0,
                attempts: 0,
                wall: Duration::ZERO,
            },
        }
    }

    /// A terminally-failed solution: [`Optimality::Failed`] with the
    /// given kind, attributed to `engine` (`"service"` when the failure
    /// was caught or raised at the scheduling layer). `attempts` records
    /// how many engine dispatches were burned before giving up.
    pub fn failed(ring: Ring, kind: FailureKind, engine: &'static str, attempts: u32) -> Solution {
        let mut sol = Solution::unstarted(ring, Exhaustion::EngineLimit, engine);
        sol.optimality = Optimality::Failed { kind };
        sol.stats.attempts = attempts;
        sol
    }

    /// Attaches a degradation record — schedulers call this on the
    /// answer a fallback engine produced, so the weaker provenance rides
    /// with the solution everywhere it is serialized.
    pub fn set_degradation(&mut self, degradation: Degradation) {
        self.degraded = Some(degradation);
    }

    /// Overrides the attempt count — schedulers call this so the final
    /// solution accounts for every dispatch (retries and ladder rungs)
    /// that led to it, not just the one that succeeded.
    pub fn set_attempts(&mut self, attempts: u32) {
        self.stats.attempts = attempts;
    }

    /// Reconstructs a solution from a persisted certificate: the caller
    /// (a certificate cache) supplies the verdict and covering it
    /// re-validated, and the answer is marked [`Solution::cached`] with
    /// all-zero statistics — no kernel ran, so none are claimed. The
    /// `engine` name records which engine originally produced the
    /// certificate, keeping provenance across the round trip.
    pub fn from_certificate(
        ring: Ring,
        covering: Option<Vec<Tile>>,
        optimality: Optimality,
        engine: &'static str,
    ) -> Solution {
        let mut sol = Solution::unstarted(ring, Exhaustion::EngineLimit, engine);
        sol.covering = covering;
        sol.optimality = optimality;
        sol.cached = true;
        sol
    }
}

// ---------------------------------------------------------------------------
// Engine trait + registry
// ---------------------------------------------------------------------------

/// A solver that can sit behind the request/response boundary.
///
/// Engines are `Sync` so one registry entry serves concurrent requests.
pub trait Engine: Sync {
    /// Registry name (stable; used by CLIs and benches for selection).
    fn name(&self) -> &'static str;

    /// One-line human description.
    fn description(&self) -> &'static str;

    /// Whether this engine can honor the request on this problem.
    /// [`Engine::solve`] on an unsupported pair is allowed to panic.
    fn supports(&self, problem: &Problem, request: &SolveRequest) -> bool;

    /// Solves the problem per the request.
    fn solve(&self, problem: &Problem, request: &SolveRequest) -> Solution;
}

/// All registered engines, exact first.
pub fn engines() -> &'static [&'static dyn Engine] {
    static ENGINES: [&dyn Engine; 8] = [
        &BitsetEngine,
        &ParallelBitsetEngine,
        &LegacyEngine,
        &DlxEngine,
        &PartitionEngine,
        &HeuristicEngine::GREEDY,
        &HeuristicEngine::GREEDY_IMPROVE,
        &HeuristicEngine::ANNEAL,
    ];
    &ENGINES
}

/// Looks an engine up by registry name.
pub fn engine_by_name(name: &str) -> Option<&'static dyn Engine> {
    engines().iter().copied().find(|e| e.name() == name)
}

// ---------------------------------------------------------------------------
// Exact engines (branch & bound)
// ---------------------------------------------------------------------------

/// Drives one exact budgeted-search function through any [`Objective`]:
/// a single probe for `WithinBudget`/`ProveInfeasible`, iterative
/// deepening from the combinatorial bound for `FindOptimal`.
fn drive_exact(
    engine: &'static str,
    problem: &Problem,
    request: &SolveRequest,
    run: impl Fn(u32, &RunLimits) -> (Outcome, bnb::Stats, Option<Exhaustion>),
) -> Solution {
    let start = Instant::now();
    let base_lim = request.run_limits(start);
    let u = problem.universe();
    let mut total = bnb::Stats::default();
    let mut budgets_tried = 0u32;
    // The node budget caps the whole request, not each deepening probe:
    // every probe gets only what the earlier probes left over (the
    // deadline is an absolute instant, so it is cumulative by nature).
    let mut probe = |budget: u32| {
        budgets_tried += 1;
        let lim = RunLimits {
            max_nodes: base_lim.max_nodes.saturating_sub(total.nodes),
            ..base_lim.clone()
        };
        let (o, s, cause) = run(budget, &lim);
        total.absorb(s);
        (o, s, cause)
    };

    let (covering, optimality) = match request.objective() {
        Objective::WithinBudget(k) | Objective::ProveInfeasible(k) => match probe(k) {
            (Outcome::Feasible(idx), _, _) => {
                let tiles: Vec<Tile> = idx.iter().map(|&i| u.tile(i).clone()).collect();
                (Some(tiles), Optimality::Feasible)
            }
            (Outcome::Infeasible, _, _) => (None, Optimality::Infeasible),
            (Outcome::NodeLimit, _, cause) => (
                None,
                Optimality::BudgetExhausted {
                    reason: cause.unwrap_or(Exhaustion::NodeBudget),
                },
            ),
        },
        Objective::FindOptimal => {
            let mut budget = bnb::deepening_start(u, problem.spec());
            let mut proof = LowerBoundProof::CombinatorialBound { bound: budget };
            loop {
                match probe(budget) {
                    (Outcome::Feasible(idx), _, _) => {
                        let tiles: Vec<Tile> = idx.iter().map(|&i| u.tile(i).clone()).collect();
                        break (
                            Some(tiles),
                            Optimality::Optimal {
                                lower_bound_proof: proof,
                            },
                        );
                    }
                    (Outcome::Infeasible, s, _) => {
                        proof = LowerBoundProof::ExhaustiveSearch {
                            infeasible_budget: budget,
                            nodes: s.nodes,
                            symmetry_factor: s.sym_factor.max(1),
                        };
                        budget += 1;
                    }
                    (Outcome::NodeLimit, _, cause) => {
                        break (
                            None,
                            Optimality::BudgetExhausted {
                                reason: cause.unwrap_or(Exhaustion::NodeBudget),
                            },
                        );
                    }
                }
            }
        }
    };

    Solution {
        ring: problem.ring(),
        covering,
        optimality,
        degraded: None,
        cached: false,
        stats: Stats {
            engine,
            nodes: total.nodes,
            pruned: total.pruned,
            dominated: total.dominated,
            sym_pruned: total.sym_pruned,
            canon_pruned: total.canon_pruned,
            memo_hits: total.memo_hits,
            shared_hits: total.shared_hits,
            memo_entries: total.memo_entries,
            partition_probes: total.partition_probes,
            sym_factor: total.sym_factor.max(1),
            budgets_tried,
            attempts: 1,
            wall: start.elapsed(),
        },
    }
}

/// The word-packed branch & bound (`"bitset"`): the default exact engine.
/// Unit-demand specs run on the bitset kernel; λ-fold specs run on the
/// lane kernel, except that a low-slack probe (`budget·n − λ·Σd(e) < n`)
/// reroutes to the partition kernel, recorded in the certificate's
/// `partition_probes` stat. `ExecPolicy::Sequential`/`Auto` run the
/// depth-first search in-thread; `ExecPolicy::Parallel` drains a rayon
/// frontier.
pub struct BitsetEngine;

impl Engine for BitsetEngine {
    fn name(&self) -> &'static str {
        "bitset"
    }

    fn description(&self) -> &'static str {
        "word-packed branch & bound (dominance pruning; honors ExecPolicy::Parallel)"
    }

    fn supports(&self, _problem: &Problem, _request: &SolveRequest) -> bool {
        true
    }

    fn solve(&self, problem: &Problem, request: &SolveRequest) -> Solution {
        let sym = request.symmetry();
        // One store for the whole request: every deepening probe (and,
        // under a parallel policy, every worker) shares it.
        let store = request.build_store(problem.universe());
        match request.policy() {
            ExecPolicy::Parallel {
                threads,
                prefix_depth,
            } => drive_exact("bitset", problem, request, |budget, lim| {
                bnb::budget_search_parallel(
                    problem.universe(),
                    problem.spec(),
                    budget,
                    lim,
                    threads,
                    prefix_per_thread(prefix_depth),
                    sym,
                    store.as_deref(),
                )
            }),
            ExecPolicy::Sequential | ExecPolicy::Auto => {
                drive_exact("bitset", problem, request, |budget, lim| {
                    bnb::budget_search(
                        problem.universe(),
                        problem.spec(),
                        budget,
                        lim,
                        sym,
                        store.as_deref(),
                    )
                })
            }
        }
    }
}

fn prefix_per_thread(prefix_depth: u32) -> usize {
    1usize << prefix_depth.min(16)
}

/// The frontier-parallel branch & bound (`"bitset-parallel"`): always
/// parallel, even under `ExecPolicy::Auto` (use [`BitsetEngine`] with an
/// explicit policy for sequential runs).
pub struct ParallelBitsetEngine;

impl Engine for ParallelBitsetEngine {
    fn name(&self) -> &'static str {
        "bitset-parallel"
    }

    fn description(&self) -> &'static str {
        "breadth-first frontier of search prefixes drained on a rayon scope"
    }

    fn supports(&self, _problem: &Problem, _request: &SolveRequest) -> bool {
        true
    }

    fn solve(&self, problem: &Problem, request: &SolveRequest) -> Solution {
        let (threads, prefix) = match request.policy() {
            ExecPolicy::Parallel {
                threads,
                prefix_depth,
            } => (threads, prefix_per_thread(prefix_depth)),
            ExecPolicy::Sequential | ExecPolicy::Auto => (0, bnb::DEFAULT_PREFIX_PER_THREAD),
        };
        let store = request.build_store(problem.universe());
        drive_exact("bitset-parallel", problem, request, |budget, lim| {
            bnb::budget_search_parallel(
                problem.universe(),
                problem.spec(),
                budget,
                lim,
                threads,
                prefix,
                request.symmetry(),
                store.as_deref(),
            )
        })
    }
}

/// The multiplicity-counter reference search (`"legacy"`): the faithful
/// pre-bitset path, kept for differential testing and before/after
/// benchmarking. Always sequential, and always [`SymmetryMode::Off`] —
/// this engine *is* the measured baseline the symmetry machinery is
/// compared against.
pub struct LegacyEngine;

impl Engine for LegacyEngine {
    fn name(&self) -> &'static str {
        "legacy"
    }

    fn description(&self) -> &'static str {
        "multiplicity-counter branch & bound (pre-bitset reference path)"
    }

    fn supports(&self, _problem: &Problem, _request: &SolveRequest) -> bool {
        true
    }

    fn solve(&self, problem: &Problem, request: &SolveRequest) -> Solution {
        drive_exact("legacy", problem, request, |budget, lim| {
            bnb::budget_search_legacy(problem.universe(), problem.spec(), budget, lim)
        })
    }
}

// ---------------------------------------------------------------------------
// Partition engines (the slack-budgeted exact-cover kernel)
// ---------------------------------------------------------------------------

/// `λ·Σd(e)`: the total demanded distance of a spec over a universe —
/// what the waste slack `budget·n − λ·Σd(e)` is measured against.
fn demanded_distance(u: &TileUniverse, spec: &CoverSpec) -> u64 {
    (0..u.num_chords())
        .map(|d| spec.demand[d as usize] as u64 * u.dist_of_pri(u.pri_of_dense(d)) as u64)
        .sum()
}

/// The slack-budgeted partition planner as a directly selectable engine
/// (`"partition"`): any spec with demands in `1..=3`, at any budget.
///
/// Runs `crate::dlx::search_partition` — MRV column selection over
/// the priority chords, exact-waste candidate filtering against the
/// budget's slack `budget·n − λ·Σd(e)`, full-load collapse at zero
/// slack — through the same deepening driver as the branch-and-bound
/// engines, so verdicts carry identical certificates and the memo,
/// symmetry, deadline, and cancellation machinery all apply. Most
/// effective on capacity-tight instances (where the sequential
/// `"bitset"` dispatch reroutes here automatically once slack < n);
/// selectable explicitly to push *any* λ ≤ 3 probe through the
/// partition route, e.g. the n = 16 frontier probes.
pub struct PartitionEngine;

impl Engine for PartitionEngine {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn description(&self) -> &'static str {
        "slack-budgeted exact-cover kernel (MRV chords, waste budget = budget*n - lambda*total-dist)"
    }

    fn supports(&self, problem: &Problem, _request: &SolveRequest) -> bool {
        (1..=3).contains(&problem.spec().max_demand())
    }

    fn solve(&self, problem: &Problem, request: &SolveRequest) -> Solution {
        let store = request.build_store(problem.universe());
        drive_exact("partition", problem, request, |budget, lim| {
            crate::dlx::search_partition(
                problem.universe(),
                problem.spec(),
                budget,
                lim,
                request.symmetry(),
                store.as_deref(),
            )
        })
    }
}

/// Zero-slack exact partition (`"dlx"`): the capacity-tightness
/// specialist, now honest about its scope.
///
/// When `λ·Σd(e) ≡ 0 (mod n)` the capacity budget `λ·Σd(e)/n` leaves
/// **zero waste**: any covering at that budget is an exact partition of
/// the demand into full-load tiles. That is precisely where the
/// slack-budgeted kernel collapses to Algorithm X (MRV over chords,
/// only full-load rows survive the waste filter), so this engine is the
/// partition kernel restricted to zero-slack specs — odd complete rings
/// (Theorem 1's partitions), *and* even rings and λ-fold specs whose
/// demanded distance divides evenly (e.g. `n = 8` complete, where the
/// parity bound refutes budget 8 in one node and budget 9 carries slack
/// n; `ρ₂(6) = 9`; `ρ₂(8) = 16`). Unlike the historical Dancing-Links
/// engine it is a complete exact engine on its domain: refutations are
/// genuine exhaustive proofs, not `EngineLimit` shrugs.
pub struct DlxEngine;

impl Engine for DlxEngine {
    fn name(&self) -> &'static str {
        "dlx"
    }

    fn description(&self) -> &'static str {
        "exact partition at zero slack (lambda*total-dist divisible by n, demands <= 3)"
    }

    fn supports(&self, problem: &Problem, _request: &SolveRequest) -> bool {
        let spec = problem.spec();
        (1..=3).contains(&spec.max_demand())
            && demanded_distance(problem.universe(), spec)
                .is_multiple_of(problem.ring().n() as u64)
    }

    fn solve(&self, problem: &Problem, request: &SolveRequest) -> Solution {
        let store = request.build_store(problem.universe());
        drive_exact("dlx", problem, request, |budget, lim| {
            crate::dlx::search_partition(
                problem.universe(),
                problem.spec(),
                budget,
                lim,
                request.symmetry(),
                store.as_deref(),
            )
        })
    }
}

// ---------------------------------------------------------------------------
// Heuristic engine
// ---------------------------------------------------------------------------

/// The composed heuristic pipeline (`"greedy"`, `"greedy-improve"`,
/// `"anneal"`): greedy max-coverage seeding, optionally annealed, then
/// polished by the drop/merge local search. Complete unit specs only —
/// heuristics produce feasible coverings (upper bounds), never proofs.
pub struct HeuristicEngine {
    name: &'static str,
    description: &'static str,
    anneal: bool,
    improve: bool,
}

impl HeuristicEngine {
    /// Plain greedy max-coverage.
    pub const GREEDY: HeuristicEngine = HeuristicEngine {
        name: "greedy",
        description: "max-coverage greedy (lazy-bucket heap)",
        anneal: false,
        improve: false,
    };
    /// Greedy + drop/merge local search.
    pub const GREEDY_IMPROVE: HeuristicEngine = HeuristicEngine {
        name: "greedy-improve",
        description: "greedy seeding polished by drop/merge local search",
        anneal: false,
        improve: true,
    };
    /// Greedy + simulated annealing + local search.
    pub const ANNEAL: HeuristicEngine = HeuristicEngine {
        name: "anneal",
        description: "greedy seeding, simulated annealing, drop/merge polish",
        anneal: true,
        improve: true,
    };
}

impl Engine for HeuristicEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn supports(&self, problem: &Problem, request: &SolveRequest) -> bool {
        problem.is_complete_unit()
            && !matches!(request.objective(), Objective::ProveInfeasible(_))
    }

    fn solve(&self, problem: &Problem, request: &SolveRequest) -> Solution {
        let start = Instant::now();
        let u = problem.universe();
        let mut tiles = greedy_cover(u);
        if self.anneal {
            tiles = anneal_covering(u, tiles, AnnealParams::default());
        }
        if self.improve {
            tiles = improve_covering(u, tiles);
        }
        let optimality = match request.objective() {
            Objective::WithinBudget(k) if tiles.len() as u64 > k as u64 => {
                Optimality::BudgetExhausted {
                    reason: Exhaustion::EngineLimit,
                }
            }
            _ => Optimality::Feasible,
        };
        let covering =
            (!matches!(optimality, Optimality::BudgetExhausted { .. })).then_some(tiles);
        Solution {
            ring: problem.ring(),
            covering,
            optimality,
            degraded: None,
            cached: false,
            stats: Stats {
                engine: self.name,
                nodes: 0,
                pruned: 0,
                dominated: 0,
                sym_pruned: 0,
                canon_pruned: 0,
                memo_hits: 0,
                shared_hits: 0,
                memo_entries: 0,
                partition_probes: 0,
                sym_factor: 1,
                budgets_tried: 1,
                attempts: 1,
                wall: start.elapsed(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound::rho_formula;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = engines().iter().map(|e| e.name()).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate engine names");
        for e in engines() {
            assert!(engine_by_name(e.name()).is_some(), "{}", e.name());
            assert!(!e.description().is_empty());
        }
        assert!(engine_by_name("no-such-engine").is_none());
    }

    #[test]
    fn find_optimal_certifies_k4() {
        let problem = Problem::complete(4);
        let sol = engine_by_name("bitset")
            .unwrap()
            .solve(&problem, &SolveRequest::find_optimal());
        assert_eq!(sol.size(), Some(3));
        let Optimality::Optimal { lower_bound_proof } = sol.optimality() else {
            panic!("expected an optimality certificate, got {:?}", sol.optimality());
        };
        // The capacity bound says only 2 — rho(4) = 3 needs the exhaustive
        // budget-2 refutation (the paper's worked example).
        assert!(
            matches!(
                lower_bound_proof,
                LowerBoundProof::ExhaustiveSearch {
                    infeasible_budget: 2,
                    ..
                }
            ),
            "{lower_bound_proof:?}"
        );
        assert_eq!(sol.stats().budgets_tried, 2);
    }

    #[test]
    fn find_optimal_search_proof_on_n8() {
        // rho(8) = 9 = capacity + 1: the deepening must record the
        // exhaustive budget-8 infeasibility proof.
        let problem = Problem::complete(8);
        let sol = engine_by_name("bitset")
            .unwrap()
            .solve(&problem, &SolveRequest::find_optimal());
        assert_eq!(sol.size(), Some(9));
        match sol.optimality() {
            Optimality::Optimal {
                lower_bound_proof:
                    LowerBoundProof::ExhaustiveSearch {
                        infeasible_budget,
                        nodes,
                        symmetry_factor,
                    },
            } => {
                assert_eq!(*infeasible_budget, 8);
                // Under the default SymmetryMode::Root the parity (T-join)
                // bound refutes the capacity-tight budget at the root: a
                // one-node proof, unreduced (factor 1).
                assert_eq!(*nodes, 1);
                assert_eq!(*symmetry_factor, 1);
            }
            other => panic!("expected a search proof, got {other:?}"),
        }
        assert_eq!(sol.stats().budgets_tried, 2);
        // The budget-9 witness search did get its root reduced by the
        // diameter-chord stabilizer of D_8 (order 4).
        assert_eq!(sol.stats().sym_factor, 4);
        assert!(sol.stats().sym_pruned > 0);
    }

    /// `SymmetryMode::Off` with the memo disabled must reproduce the
    /// historical search exactly — here pinned by the n = 8 refutation's
    /// node count from BENCH_1. With the memo on (the default), the same
    /// refutation must still hold, in strictly fewer nodes.
    #[test]
    fn symmetry_off_reproduces_baseline_node_counts() {
        let problem = Problem::complete(8);
        let sol = engine_by_name("bitset").unwrap().solve(
            &problem,
            &SolveRequest::prove_infeasible(8)
                .with_symmetry(SymmetryMode::Off)
                .with_memo(false),
        );
        assert_eq!(*sol.optimality(), Optimality::Infeasible);
        assert_eq!(sol.stats().nodes, 97_465, "BENCH_1 baseline drifted");
        assert_eq!(sol.stats().sym_factor, 1);
        assert_eq!(sol.stats().sym_pruned, 0);
        assert_eq!(sol.stats().memo_hits, 0);
        assert_eq!(sol.stats().memo_entries, 0);
        let memoed = engine_by_name("bitset").unwrap().solve(
            &problem,
            &SolveRequest::prove_infeasible(8).with_symmetry(SymmetryMode::Off),
        );
        assert_eq!(*memoed.optimality(), Optimality::Infeasible);
        assert!(
            memoed.stats().nodes < 97_465,
            "memo did not bite: {:?}",
            memoed.stats()
        );
        assert!(memoed.stats().memo_hits > 0);
        assert!(memoed.stats().memo_entries > 0);
    }

    /// All symmetry modes certify the same optimum through the engines.
    #[test]
    fn symmetry_modes_agree_through_engine() {
        for n in [6u32, 8] {
            let problem = Problem::complete(n);
            let mut sizes = Vec::new();
            for sym in [SymmetryMode::Off, SymmetryMode::Root, SymmetryMode::Full] {
                let sol = engine_by_name("bitset")
                    .unwrap()
                    .solve(&problem, &SolveRequest::find_optimal().with_symmetry(sym));
                assert!(
                    matches!(sol.optimality(), Optimality::Optimal { .. }),
                    "n={n} {sym:?}"
                );
                sizes.push(sol.size().unwrap());
            }
            assert!(sizes.windows(2).all(|w| w[0] == w[1]), "n={n}: {sizes:?}");
        }
    }

    #[test]
    fn prove_infeasible_and_disprove() {
        let problem = Problem::complete(6);
        let rho = rho_formula(6) as u32;
        let engine = engine_by_name("bitset").unwrap();
        let below = engine.solve(&problem, &SolveRequest::prove_infeasible(rho - 1));
        assert_eq!(*below.optimality(), Optimality::Infeasible);
        assert!(below.covering().is_none());
        // A disproof: the budget is actually feasible.
        let at = engine.solve(&problem, &SolveRequest::prove_infeasible(rho));
        assert_eq!(*at.optimality(), Optimality::Feasible);
        assert_eq!(at.size(), Some(rho as usize));
    }

    #[test]
    fn find_optimal_node_budget_is_cumulative_across_deepening() {
        // n = 8: the budget-8 refutation costs exactly 97,465 nodes and
        // the budget-9 witness 9 more. A request cap of 97,470 leaves the
        // second probe only 5 nodes — the request must exhaust instead of
        // granting every deepening rung a fresh allowance.
        // Symmetry and memo off: the historical counts are the fixture.
        let problem = Problem::complete(8);
        let sol = engine_by_name("bitset").unwrap().solve(
            &problem,
            &SolveRequest::find_optimal()
                .with_symmetry(SymmetryMode::Off)
                .with_memo(false)
                .with_max_nodes(97_470),
        );
        assert_eq!(
            *sol.optimality(),
            Optimality::BudgetExhausted {
                reason: Exhaustion::NodeBudget
            }
        );
        assert!(
            sol.stats().nodes <= 97_480,
            "overspent the request cap: {:?}",
            sol.stats()
        );
        // A few nodes of headroom for the witness and the same request
        // completes, spending under the cap in total.
        let sol = engine_by_name("bitset").unwrap().solve(
            &problem,
            &SolveRequest::find_optimal()
                .with_symmetry(SymmetryMode::Off)
                .with_memo(false)
                .with_max_nodes(97_500),
        );
        assert_eq!(sol.size(), Some(9));
        assert!(sol.stats().nodes <= 97_500, "{:?}", sol.stats());
    }

    #[test]
    fn node_budget_reports_exhaustion() {
        // Symmetry off: the parity bound would otherwise settle this
        // refutation in one node, under any cap.
        let problem = Problem::complete(8);
        let sol = engine_by_name("bitset").unwrap().solve(
            &problem,
            &SolveRequest::within_budget(8)
                .with_symmetry(SymmetryMode::Off)
                .with_max_nodes(10),
        );
        assert_eq!(
            *sol.optimality(),
            Optimality::BudgetExhausted {
                reason: Exhaustion::NodeBudget
            }
        );
    }

    #[test]
    fn cancel_token_tree_propagates_down_not_up() {
        let root = CancelToken::new();
        let a = root.child();
        let b = root.child();
        let a1 = a.child();
        // Sibling cancellation is isolated…
        a.cancel();
        assert!(a.is_cancelled() && a1.is_cancelled());
        assert!(!b.is_cancelled() && !root.is_cancelled());
        // …root cancellation reaches every live descendant…
        let b1 = b.child();
        root.cancel();
        assert!(root.is_cancelled() && b.is_cancelled() && b1.is_cancelled());
        // …and a child of a cancelled token is born cancelled.
        assert!(root.child().is_cancelled());
        // Clones still share one flag (a clone is the same node, not a child).
        let c = CancelToken::new();
        let c2 = c.clone();
        c2.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn child_cancel_token_stops_engine_like_its_parent() {
        // The service pattern: the batch root is cancelled, a job holding
        // a child token must abort its kernel.
        let problem = Problem::complete(8);
        let root = CancelToken::new();
        let job = root.child();
        root.cancel();
        let sol = engine_by_name("bitset").unwrap().solve(
            &problem,
            &SolveRequest::within_budget(8)
                .with_symmetry(SymmetryMode::Off)
                .with_cancel_token(job),
        );
        assert_eq!(
            *sol.optimality(),
            Optimality::BudgetExhausted {
                reason: Exhaustion::Cancelled
            }
        );
        assert!(sol.stats().nodes <= 8192, "stopped late: {:?}", sol.stats());
    }

    #[test]
    fn unstarted_solution_reports_zero_work() {
        let sol = Solution::unstarted(Ring::new(6), Exhaustion::Deadline, "service");
        assert!(sol.covering().is_none());
        assert_eq!(
            *sol.optimality(),
            Optimality::BudgetExhausted {
                reason: Exhaustion::Deadline
            }
        );
        assert_eq!(sol.stats().nodes, 0);
        assert_eq!(sol.stats().engine, "service");
    }

    #[test]
    fn shared_universe_problems_reuse_one_enumeration() {
        let universe = Arc::new(TileUniverse::new(Ring::new(6), 6));
        let complete = Problem::shared(universe.clone(), CoverSpec::complete(6));
        let pair = Problem::shared(
            universe.clone(),
            CoverSpec::subset(6, &[cyclecover_graph::Edge::new(0, 2)]),
        );
        assert!(Arc::ptr_eq(complete.universe_arc(), pair.universe_arc()));
        let engine = engine_by_name("bitset").unwrap();
        assert_eq!(
            engine.solve(&complete, &SolveRequest::find_optimal()).size(),
            Some(5)
        );
        assert_eq!(
            engine.solve(&pair, &SolveRequest::find_optimal()).size(),
            Some(1)
        );
    }

    #[test]
    fn cancel_token_stops_sequential_and_parallel() {
        // A pre-cancelled token must stop the n = 8 budget-8 proof almost
        // immediately (it needs ~100k nodes when allowed to finish).
        for policy in [ExecPolicy::Sequential, ExecPolicy::parallel()] {
            let problem = Problem::complete(8);
            let token = CancelToken::new();
            token.cancel();
            let sol = engine_by_name("bitset").unwrap().solve(
                &problem,
                &SolveRequest::within_budget(8)
                    .with_symmetry(SymmetryMode::Off)
                    .with_cancel_token(token)
                    .with_policy(policy),
            );
            assert_eq!(
                *sol.optimality(),
                Optimality::BudgetExhausted {
                    reason: Exhaustion::Cancelled
                },
                "policy {policy:?}"
            );
            assert!(sol.stats().nodes <= 8192, "stopped late: {:?}", sol.stats());
        }
    }

    #[test]
    fn deadline_stops_parallel_workers() {
        // The satellite fix: an already-expired deadline must stop the
        // frontier workers (pre-PR they honored only node budgets).
        let problem = Problem::complete(8);
        let sol = engine_by_name("bitset-parallel").unwrap().solve(
            &problem,
            &SolveRequest::within_budget(8)
                .with_symmetry(SymmetryMode::Off)
                .with_deadline(Duration::ZERO),
        );
        assert_eq!(
            *sol.optimality(),
            Optimality::BudgetExhausted {
                reason: Exhaustion::Deadline
            }
        );
        assert!(sol.stats().nodes <= 8192, "stopped late: {:?}", sol.stats());
    }

    #[test]
    fn dlx_partitions_odd_rings() {
        for n in [3u32, 5, 7, 9] {
            let problem = Problem::complete(n);
            let sol = engine_by_name("dlx")
                .unwrap()
                .solve(&problem, &SolveRequest::find_optimal());
            assert_eq!(sol.size(), Some(rho_formula(n) as usize), "n={n}");
            assert!(matches!(sol.optimality(), Optimality::Optimal { .. }));
        }
    }

    #[test]
    fn heuristics_report_feasible_not_optimal() {
        let problem = Problem::complete(9);
        for name in ["greedy", "greedy-improve", "anneal"] {
            let sol = engine_by_name(name)
                .unwrap()
                .solve(&problem, &SolveRequest::find_optimal());
            assert_eq!(*sol.optimality(), Optimality::Feasible, "{name}");
            assert!(sol.size().unwrap() as u64 >= rho_formula(9), "{name}");
        }
    }
}
