//! The residual-state dominance memo: a transposition table over the
//! exact search's uncovered [`ChordSet`]s.
//!
//! Distinct search prefixes frequently reach the *same* residual state —
//! two tiles placed in either order, or different tile pairs covering the
//! same chords — and restricted-cover instances share that structure
//! across subproblems aggressively (Manthey, *On Approximating Restricted
//! Cycle Covers*). The memo exploits it: when a node's subtree has been
//! exhausted without finding a covering, the node's uncovered set is
//! recorded together with how many tiles were already used. Any later
//! node reaching the same uncovered set with an **equal-or-worse budget**
//! (at least as many tiles used, hence at most as much slack) is pruned —
//! its subtree is a sub-search of one already proved empty.
//!
//! Soundness: an entry `(state, used)` is written only after the search
//! exhaustively explored the node (under the sound dominance, bound, and
//! orbit reductions) and found no covering within `budget − used` further
//! tiles. A later visit with `used' ≥ used` asks for a covering within
//! `budget − used' ≤ budget − used` tiles from the same state — none
//! exists. Aborted subtrees (node/deadline/cancel limits) record nothing,
//! and the table is rebuilt per budget probe, so entries never leak
//! across budgets.
//!
//! Under [`crate::bnb::SymmetryMode::Full`] the search keys the memo by
//! the **canonical** residual state — the lexicographically smallest
//! dihedral image of the uncovered set under the spec-preserving
//! subgroup. Two prefixes whose residual states are mirror images then
//! share one entry: this is the ROADMAP's canonical-prefix test, applied
//! where it is sound (a completion of a state maps element-wise to a
//! completion of every state in its orbit, so "orbit exhausted" proofs
//! transfer; a naive lexicographic test on the prefix *multiset* itself
//! would not be sound here, because prefix reachability under the
//! chord-priority branch rule is not orbit-invariant).
//!
//! # Mechanics
//!
//! States are keyed *exactly*: the uncovered set's words (`≤ 128` chord
//! slots, i.e. every `n ≤ 16` — far beyond what exact search finishes)
//! are the key, so a hash collision can never cause a false prune and
//! certificates stay exact. A Zobrist hash — one 64-bit key per chord
//! slot, generated deterministically by the vendored xoshiro256**
//! generator, XOR-folded incrementally as chords are covered/uncovered —
//! picks the table slot. The table probes an eight-slot window per hash,
//! doubling while under its byte budget; with the window full, a
//! colliding insert keeps whichever entries have the *smaller* used
//! counts (the stronger pruners). Lost entries only lose pruning, never
//! correctness.

use rand::prelude::*;

/// Bytes one [`ResidualMemo`] slot occupies (key + used count + padding).
const SLOT_BYTES: usize = std::mem::size_of::<Slot>();

/// Smallest slot count the table starts from (and the floor the byte
/// budget is clamped to).
const MIN_SLOTS: usize = 1 << 10;

/// The deterministic seed of the Zobrist key stream. Fixed so node
/// counts are reproducible run to run and machine to machine.
const ZOBRIST_SEED: u64 = 0xC0DE_C0FF_EE15_5EED;

/// Whether the memo machinery is engaged for a search, and how much
/// memory it may claim. Defaults to enabled with a 32 MiB budget —
/// budgeted like the service layer's universe cache, and overridable
/// from the CLI (`--no-memo` / `--memo-mb`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoConfig {
    /// Whether the memo (and, under `SymmetryMode::Full`, canonical
    /// residual-state keying) runs at all. Disabled, the search
    /// reproduces its memo-free node counts bit for bit.
    pub enabled: bool,
    /// Byte budget for the table (clamped to at least one minimal
    /// table); the table doubles up to the largest power-of-two slot
    /// count fitting the budget, then falls back to keep-the-stronger
    /// replacement.
    pub budget_bytes: usize,
}

/// Default memo byte budget: 32 MiB (~1.3M resident states).
pub const DEFAULT_MEMO_BYTES: usize = 32 << 20;

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig {
            enabled: true,
            budget_bytes: DEFAULT_MEMO_BYTES,
        }
    }
}

impl MemoConfig {
    /// The memo switched off entirely — the historical search.
    pub fn disabled() -> Self {
        MemoConfig {
            enabled: false,
            budget_bytes: 0,
        }
    }
}

/// One table slot: the exact residual state (as up to two words of the
/// uncovered set) and the smallest tiles-used count whose subtree was
/// exhausted from it. `used == u32::MAX` marks an empty slot (real used
/// counts are bounded by the search budget).
#[derive(Clone, Copy)]
struct Slot {
    key: [u64; 2],
    used: u32,
}

const EMPTY: u32 = u32::MAX;

/// The residual-state dominance memo of one budgeted search. See the
/// module docs for the pruning rule and its soundness.
pub(crate) struct ResidualMemo {
    slots: Vec<Slot>,
    /// `slots.len() - 1` (the table is a power of two).
    mask: usize,
    /// Occupied slot count.
    len: usize,
    /// Largest slot count the byte budget allows.
    cap_slots: usize,
    /// Per-chord Zobrist keys (indexed by priority chord).
    zobrist: Vec<u64>,
}

impl ResidualMemo {
    /// A memo for `num_chords` chord slots under the given byte budget.
    /// Returns `None` when the state cannot be keyed exactly
    /// (`num_chords > 128`, i.e. `n ≥ 17` — beyond exact search anyway).
    pub(crate) fn new(num_chords: u32, budget_bytes: usize) -> Option<ResidualMemo> {
        if num_chords > 128 {
            return None;
        }
        let budget_slots = (budget_bytes / SLOT_BYTES).max(MIN_SLOTS);
        // Floor to a power of two so `hash & mask` indexes uniformly.
        let cap_slots = 1usize << (usize::BITS - 1 - budget_slots.leading_zeros());
        let start = MIN_SLOTS.min(cap_slots);
        let mut rng = StdRng::seed_from_u64(ZOBRIST_SEED);
        let zobrist: Vec<u64> = (0..num_chords).map(|_| rng.next_u64()).collect();
        Some(ResidualMemo {
            slots: vec![
                Slot {
                    key: [0, 0],
                    used: EMPTY,
                };
                start
            ],
            mask: start - 1,
            len: 0,
            cap_slots,
            zobrist,
        })
    }

    /// The Zobrist key of priority chord `c` — XOR it into a running
    /// hash whenever `c` enters or leaves the uncovered set.
    #[inline]
    pub(crate) fn chord_key(&self, c: u32) -> u64 {
        self.zobrist[c as usize]
    }

    /// Occupied entries (the `memo_entries` statistic).
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// How many consecutive slots one hash may land in (a small
    /// associativity window: collisions displace far less pruning than a
    /// direct-mapped table would).
    const WAYS: usize = 8;

    /// Whether a recorded state equal to `key` exists with a used count
    /// `≤ used` — i.e. whether the current node is dominated and may be
    /// pruned.
    #[inline]
    pub(crate) fn dominated(&self, hash: u64, key: [u64; 2], used: u32) -> bool {
        let base = hash as usize;
        for i in 0..Self::WAYS {
            let slot = &self.slots[(base + i) & self.mask];
            if slot.used != EMPTY && slot.key == key {
                return slot.used <= used;
            }
        }
        false
    }

    /// Records that the node with residual state `key` and `used` placed
    /// tiles was exhausted without a covering. Keeps the smaller used
    /// count on key match; with the window full at capacity, evicts the
    /// weakest resident (largest used) if the newcomer prunes more.
    pub(crate) fn record(&mut self, hash: u64, key: [u64; 2], used: u32) {
        debug_assert_ne!(used, EMPTY);
        if self.len * 4 > self.slots.len() * 3 && self.slots.len() < self.cap_slots {
            self.grow();
        }
        let base = hash as usize;
        let mut weakest = 0usize;
        let mut weakest_used = 0u32;
        for i in 0..Self::WAYS {
            let idx = (base + i) & self.mask;
            let slot = &mut self.slots[idx];
            if slot.used == EMPTY {
                self.len += 1;
                *slot = Slot { key, used };
                return;
            }
            if slot.key == key {
                slot.used = slot.used.min(used);
                return;
            }
            if slot.used >= weakest_used {
                weakest_used = slot.used;
                weakest = idx;
            }
        }
        if used < weakest_used {
            self.slots[weakest] = Slot { key, used };
        }
    }

    /// Doubles the table, re-seating every entry under the wider mask.
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Slot {
                    key: [0, 0],
                    used: EMPTY,
                };
                new_len
            ],
        );
        self.mask = new_len - 1;
        self.len = 0;
        for slot in old {
            if slot.used != EMPTY {
                let hash = self.hash_of_key(slot.key);
                self.record(hash, slot.key, slot.used);
            }
        }
    }

    /// The Zobrist hash of an explicit state (used on rehash and by the
    /// canonicalization path, which builds keys it has no running hash
    /// for).
    pub(crate) fn hash_of_key(&self, key: [u64; 2]) -> u64 {
        let mut hash = 0u64;
        for (w, base) in key.iter().zip([0u32, 64]) {
            let mut bits = *w;
            while bits != 0 {
                let c = base + bits.trailing_zeros();
                hash ^= self.zobrist[c as usize];
                bits &= bits - 1;
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_only_with_equal_or_better_used() {
        let mut memo = ResidualMemo::new(66, 1 << 20).expect("n=12 fits");
        let key = [0b1011, 0b1];
        let hash = memo.hash_of_key(key);
        assert!(!memo.dominated(hash, key, 5));
        memo.record(hash, key, 5);
        assert!(memo.dominated(hash, key, 5), "equal used prunes");
        assert!(memo.dominated(hash, key, 9), "worse used prunes");
        assert!(!memo.dominated(hash, key, 4), "better used explores");
        memo.record(hash, key, 3);
        assert!(memo.dominated(hash, key, 3), "record keeps the minimum");
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn distinct_keys_never_alias() {
        // Exact keys: even a forced hash-slot collision cannot prune the
        // wrong state.
        let mut memo = ResidualMemo::new(64, 0).expect("floor budget");
        let a = [0x1u64, 0];
        let b = [0x2u64, 0];
        memo.record(memo.hash_of_key(a), a, 2);
        assert!(!memo.dominated(memo.hash_of_key(b), b, 10));
    }

    #[test]
    fn grows_and_survives_rehash() {
        let mut memo = ResidualMemo::new(128, 8 << 20).expect("fits");
        let mut rng = StdRng::seed_from_u64(7);
        let keys: Vec<[u64; 2]> = (0..5000).map(|_| [rng.next_u64(), rng.next_u64()]).collect();
        for (i, &k) in keys.iter().enumerate() {
            memo.record(memo.hash_of_key(k), k, (i % 17) as u32);
        }
        assert!(memo.len() > MIN_SLOTS, "table grew past its seed size");
        let survived = keys
            .iter()
            .enumerate()
            .filter(|&(i, &k)| memo.dominated(memo.hash_of_key(k), k, (i % 17) as u32))
            .count();
        // Collisions may evict a few entries (pruning loss, never a
        // correctness issue); the overwhelming majority must survive.
        assert!(
            survived * 100 >= keys.len() * 90,
            "only {survived}/{} entries survived the rehashes",
            keys.len()
        );
    }

    #[test]
    fn zobrist_stream_is_deterministic() {
        let a = ResidualMemo::new(45, 1 << 20).unwrap();
        let b = ResidualMemo::new(45, 1 << 20).unwrap();
        for c in 0..45 {
            assert_eq!(a.chord_key(c), b.chord_key(c));
        }
    }

    #[test]
    fn too_wide_states_disable_the_memo() {
        assert!(ResidualMemo::new(129, 1 << 20).is_none(), "n >= 17");
        assert!(ResidualMemo::new(128, 1 << 20).is_some(), "n = 16");
    }
}
