//! The shared refutation store: a concurrent transposition table over
//! the exact search's uncovered [`ChordSet`]s, reused across budget
//! probes, parallel workers, and (via the service layer) whole requests.
//!
//! Distinct search prefixes frequently reach the *same* residual state —
//! two tiles placed in either order, or different tile pairs covering the
//! same chords — and restricted-cover instances share that structure
//! across subproblems aggressively (Manthey, *On Approximating Restricted
//! Cycle Covers*). The store exploits it: when a node's subtree has been
//! exhausted without finding a covering, the node's uncovered set is
//! recorded together with the **slack** it was refuted under — `rem =
//! budget − used`, "no covering of this state exists within `rem`
//! tiles". Any later node reaching the same uncovered set with
//! equal-or-less slack is pruned: its subtree is a sub-search of one
//! already proved empty.
//!
//! # Why `rem`, not `used`
//!
//! Earlier revisions stored the tiles-*used* count and pruned when
//! `entry.used ≤ used`. Within one budget probe the two rules are
//! interchangeable (`entry.used ≤ used ⟺ budget − entry.used ≥ budget −
//! used`), but `used` is only meaningful relative to the probe's budget,
//! so the table had to be rebuilt for every probe. `rem` makes each
//! entry a budget-free statement about the state itself, which is what
//! lets one store serve three concentric sharing rings:
//!
//! 1. **Cross-budget**: a `FindOptimal` deepening sweep threads one
//!    store through its probes; a refutation recorded at budget `k`
//!    ("no covering within `rem` tiles") prunes identically at `k ± 1`
//!    wherever the new probe's slack is `≤ rem`.
//! 2. **Cross-worker**: the parallel frontier's workers share one
//!    store; a subtree one worker exhausts prunes its mirror images in
//!    every other worker's prefix.
//! 3. **Cross-request**: the service keys stores by tile universe and
//!    threads them through a batch's coalesced traffic — entries carry
//!    no spec state (unit demands mean the uncovered set *is* the
//!    subproblem), so any same-universe request may reuse them.
//!
//! Soundness: an entry `(state, rem)` is written only after the search
//! exhaustively explored the node (under the sound dominance, bound,
//! and orbit reductions) and found no covering within `rem` further
//! tiles. The statement quantifies over tile subsets of the universe
//! only — not the spec, the budget, or the symmetry mode of the search
//! that recorded it — so a later visit with slack `≤ rem` may prune
//! regardless of which probe, worker, or request wrote the entry.
//! Aborted subtrees (node/deadline/cancel limits) record nothing.
//! Entries are never shared across *universes*: the store carries a
//! fingerprint of the universe it was built for and attachment is
//! refused on mismatch.
//!
//! Under [`crate::bnb::SymmetryMode::Full`] the search keys the store by
//! the **canonical** residual state — the lexicographically smallest
//! dihedral image of the uncovered set under the spec-preserving
//! subgroup. Two prefixes whose residual states are mirror images then
//! share one entry: this is the ROADMAP's canonical-prefix test, applied
//! where it is sound (a completion of a state maps element-wise to a
//! completion of every state in its orbit, so "orbit exhausted" proofs
//! transfer; a naive lexicographic test on the prefix *multiset* itself
//! would not be sound here, because prefix reachability under the
//! chord-priority branch rule is not orbit-invariant).
//!
//! # Mechanics
//!
//! States are keyed *exactly*: the residual state's words (`≤ 128` chord
//! slots, i.e. every `n ≤ 16` — far beyond what exact search finishes)
//! are the key, so a hash collision can never cause a false prune and
//! certificates stay exact. Unit-demand searches key by the uncovered
//! [`crate::bitset::ChordSet`]'s words (1 bit per chord); λ-fold
//! searches key by the packed residual [`crate::bitset::LaneSet`]'s
//! words (2 bits per chord, residual multiplicities `≤ 3`); the
//! zero-slack partition kernel keys by the same packed lane words but
//! under a **waste-slack** `rem` (unused cycle length remaining, not
//! tiles remaining). The encodings can collide bit for bit over the
//! same universe — and lane and partition entries share raw words by
//! construction — so every slot carries its **lane width** (`bits`:
//! 1 = unit, 2 = λ-fold tile slack, 3 = partition waste slack) and a
//! probe only matches entries of its own width — a service-shared store
//! may hold all kinds side by side. A Zobrist hash — one 64-bit key
//! per (chord slot, multiplicity level `1..=3`), generated
//! deterministically by the vendored xoshiro256** generator (the
//! level-1 keys come first, so unit hashes are unchanged from earlier
//! revisions), XOR-folded incrementally as residual demand is
//! covered/uncovered — picks the shard (top bits) and the slot within
//! it (low bits). Each
//! shard is an independently locked open-addressing table probing an
//! eight-slot window per hash, doubling while under its share of the
//! byte budget; with the window full, a colliding insert keeps
//! whichever entries have the *larger* `rem` (the stronger pruners).
//! Lost entries only lose pruning, never correctness.
//!
//! Lock traffic is one uncontended `Mutex` acquisition per probe or
//! record. Acquisitions first `try_lock` and only fall back to a
//! blocking lock — counted in [`MemoStore::contention`] — when another
//! worker holds the shard, so the single-threaded search pays one
//! atomic compare-exchange per table access and the contention counter
//! is deterministically zero.
//!
//! Every searcher that attaches to the store draws a *generation* tag;
//! entries remember the generation that recorded (or last strengthened)
//! them, so a searcher can tell hits on its own work from hits on
//! another probe's, worker's, or request's — the `shared_hits`
//! statistic CI gates on.

use crate::TileUniverse;
use rand::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Bytes one [`MemoStore`] slot occupies (key + rem + generation).
const SLOT_BYTES: usize = std::mem::size_of::<Slot>();

/// Smallest slot count a shard starts from (and the floor its byte
/// budget is clamped to).
const MIN_SLOTS: usize = 1 << 10;

/// Shard count: a power of two small enough that the per-shard byte
/// floor stays negligible and large enough that a few workers rarely
/// collide on one lock.
const SHARDS: usize = 16;

/// The deterministic seed of the Zobrist key stream. Fixed so node
/// counts are reproducible run to run and machine to machine.
const ZOBRIST_SEED: u64 = 0xC0DE_C0FF_EE15_5EED;

/// Whether the memo machinery is engaged for a search, and how much
/// memory it may claim. Defaults to enabled with a 32 MiB budget —
/// budgeted like the service layer's universe cache, and overridable
/// from the CLI (`--no-memo` / `--memo-mb`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoConfig {
    /// Whether the memo (and, under `SymmetryMode::Full`, canonical
    /// residual-state keying) runs at all. Disabled, the search
    /// reproduces its memo-free node counts bit for bit.
    pub enabled: bool,
    /// Byte budget for the table (clamped to at least one minimal
    /// table); each shard doubles up to its share of the budget, then
    /// falls back to keep-the-stronger replacement.
    pub budget_bytes: usize,
}

/// Default memo byte budget: 32 MiB (~1.3M resident states).
pub const DEFAULT_MEMO_BYTES: usize = 32 << 20;

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig {
            enabled: true,
            budget_bytes: DEFAULT_MEMO_BYTES,
        }
    }
}

impl MemoConfig {
    /// The memo switched off entirely — the historical search.
    pub fn disabled() -> Self {
        MemoConfig {
            enabled: false,
            budget_bytes: 0,
        }
    }
}

/// Words of one state key: four words hold either a unit uncovered set
/// (`≤ 128` chords, upper two words zero) or a packed 2-bit residual
/// lane vector (`≤ 128` chords × 2 bits).
pub(crate) const KEY_WORDS: usize = 4;

/// One table slot: the exact residual state (up to [`KEY_WORDS`] words
/// of the uncovered set or residual lane vector), its lane width, the
/// largest slack the state was refuted under, and the generation that
/// recorded it. `rem == u32::MAX` marks an empty slot (real slacks are
/// bounded by the search budget).
#[derive(Clone, Copy)]
struct Slot {
    key: [u64; KEY_WORDS],
    rem: u32,
    gen: u32,
    /// Lane-width/semantics tag of `key` (1 = unit bitset, 2 = λ-fold
    /// lanes under tile slack, 3 = λ-fold lanes under waste slack).
    bits: u8,
}

const EMPTY: u32 = u32::MAX;

/// One independently locked segment of the store.
struct Shard {
    slots: Vec<Slot>,
    /// `slots.len() - 1` (the table is a power of two).
    mask: usize,
    /// Occupied slot count.
    len: usize,
    /// Largest slot count this shard's byte share allows.
    cap_slots: usize,
}

/// The shared refutation store. See the module docs for the pruning
/// rule, its soundness, and the three sharing rings.
pub struct MemoStore {
    shards: Vec<Mutex<Shard>>,
    /// Zobrist keys per (priority chord, multiplicity level): the first
    /// `num_chords` entries are the level-1 keys (the unit search's
    /// whole stream), followed by the level-2 and level-3 blocks the
    /// λ-fold lane search folds in per residual unit.
    zobrist: Vec<u64>,
    /// Next generation tag to hand out (see [`MemoStore::attach`]).
    next_gen: AtomicU32,
    /// Blocking shard-lock acquisitions (zero unless workers collide).
    contention: AtomicU64,
    /// Total occupied slots across shards.
    len: AtomicU64,
    /// Universe fingerprint — entries are meaningless outside it.
    n: u32,
    num_chords: u32,
    num_tiles: u32,
}

impl std::fmt::Debug for MemoStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoStore")
            .field("n", &self.n)
            .field("num_chords", &self.num_chords)
            .field("num_tiles", &self.num_tiles)
            .field("len", &self.len())
            .finish()
    }
}

impl MemoStore {
    /// A store for `u`'s residual states under the given byte budget.
    /// Returns `None` when the state cannot be keyed exactly
    /// (`num_chords > 128`, i.e. `n ≥ 17` — beyond exact search anyway).
    pub fn new(u: &TileUniverse, budget_bytes: usize) -> Option<MemoStore> {
        let num_chords = u.num_chords();
        if num_chords > 128 {
            return None;
        }
        let budget_slots = (budget_bytes / SLOT_BYTES / SHARDS).max(MIN_SLOTS);
        // Floor to a power of two so `hash & mask` indexes uniformly.
        let cap_slots = 1usize << (usize::BITS - 1 - budget_slots.leading_zeros());
        let start = MIN_SLOTS.min(cap_slots);
        let mut rng = StdRng::seed_from_u64(ZOBRIST_SEED);
        // Level-1 keys first: the prefix of the seeded stream is exactly
        // the historical per-chord key set, so unit-search hashes (and
        // hence node counts) are bit-identical to earlier revisions.
        let zobrist: Vec<u64> = (0..3 * num_chords).map(|_| rng.next_u64()).collect();
        let shards = (0..SHARDS)
            .map(|_| {
                Mutex::new(Shard {
                    slots: vec![
                        Slot {
                            key: [0; KEY_WORDS],
                            rem: EMPTY,
                            gen: 0,
                            bits: 0,
                        };
                        start
                    ],
                    mask: start - 1,
                    len: 0,
                    cap_slots,
                })
            })
            .collect();
        Some(MemoStore {
            shards,
            zobrist,
            next_gen: AtomicU32::new(1),
            contention: AtomicU64::new(0),
            len: AtomicU64::new(0),
            n: u.ring().n(),
            num_chords,
            num_tiles: u.len() as u32,
        })
    }

    /// Whether `u` is the universe this store was built for. Entries
    /// are statements about one universe's tiles and chord priorities;
    /// an incompatible store must be treated as absent.
    pub fn compatible(&self, u: &TileUniverse) -> bool {
        self.n == u.ring().n()
            && self.num_chords == u.num_chords()
            && self.num_tiles == u.len() as u32
    }

    /// Registers a searcher (one budget probe, parallel worker, or
    /// request) and returns its generation tag. Hits on entries with a
    /// different tag are cross-searcher reuse (`shared_hits`).
    pub(crate) fn attach(&self) -> u32 {
        self.next_gen.fetch_add(1, Ordering::Relaxed)
    }

    /// The Zobrist key of priority chord `c` — XOR it into a running
    /// hash whenever `c` enters or leaves the uncovered set (the unit
    /// search's key; identical to level 1 of [`MemoStore::chord_level_key`]).
    #[inline]
    pub(crate) fn chord_key(&self, c: u32) -> u64 {
        self.zobrist[c as usize]
    }

    /// The Zobrist key of (priority chord `c`, multiplicity level `v`),
    /// `v ∈ 1..=3` — the λ-fold lane search XORs it into its running
    /// hash whenever chord `c`'s residual demand crosses `v` (a hash of
    /// residual vector `r` is `⊕_c ⊕_{v=1..=r(c)} key(c, v)`).
    #[inline]
    pub(crate) fn chord_level_key(&self, c: u32, v: u32) -> u64 {
        debug_assert!((1..=3).contains(&v), "lane levels are 1..=3");
        self.zobrist[((v - 1) * self.num_chords + c) as usize]
    }

    /// Occupied entries (the `memo_entries` statistic).
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the store holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking shard-lock acquisitions so far — deterministically zero
    /// for single-threaded searches, and a contention health signal for
    /// shared-store deployments.
    pub fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// How many consecutive slots one hash may land in (a small
    /// associativity window: collisions displace far less pruning than a
    /// direct-mapped table would).
    const WAYS: usize = 8;

    /// Locks the shard `hash` selects, counting blocking acquisitions.
    fn lock_shard(&self, hash: u64) -> std::sync::MutexGuard<'_, Shard> {
        let shard = &self.shards[(hash >> 60) as usize & (SHARDS - 1)];
        match shard.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                shard.lock().expect("poison-free")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => unreachable!("poison-free"),
        }
    }

    /// Whether a recorded state equal to `key` (at lane width `bits`)
    /// was refuted under slack `≥ slack` — i.e. whether a node (or
    /// candidate child) with `slack` tiles of headroom is dominated and
    /// may be pruned. Returns the recording generation on a hit so the
    /// caller can classify the hit as its own or shared.
    #[inline]
    pub(crate) fn dominated(
        &self,
        hash: u64,
        key: [u64; KEY_WORDS],
        bits: u8,
        slack: u32,
    ) -> Option<u32> {
        let shard = self.lock_shard(hash);
        let base = hash as usize;
        for i in 0..Self::WAYS {
            let slot = &shard.slots[(base + i) & shard.mask];
            if slot.rem != EMPTY && slot.bits == bits && slot.key == key {
                return (slot.rem >= slack).then_some(slot.gen);
            }
        }
        None
    }

    /// Records that the state `key` (at lane width `bits`) was exhausted
    /// with `rem` tiles of slack by searcher `gen`. Keeps the larger
    /// slack on key match (tagging the entry with its strengthener);
    /// with the window full at capacity, evicts the weakest resident
    /// (smallest rem) if the newcomer prunes more.
    pub(crate) fn record(&self, hash: u64, key: [u64; KEY_WORDS], bits: u8, rem: u32, gen: u32) {
        debug_assert_ne!(rem, EMPTY);
        let mut shard = self.lock_shard(hash);
        if shard.len * 4 > shard.slots.len() * 3 && shard.slots.len() < shard.cap_slots {
            self.grow(&mut shard);
        }
        let base = hash as usize;
        let mut weakest = 0usize;
        let mut weakest_rem = EMPTY;
        for i in 0..Self::WAYS {
            let idx = (base + i) & shard.mask;
            let slot = shard.slots[idx];
            if slot.rem == EMPTY {
                shard.len += 1;
                shard.slots[idx] = Slot { key, rem, gen, bits };
                self.len.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if slot.bits == bits && slot.key == key {
                if rem > slot.rem {
                    shard.slots[idx] = Slot { key, rem, gen, bits };
                }
                return;
            }
            if slot.rem <= weakest_rem {
                weakest_rem = slot.rem;
                weakest = idx;
            }
        }
        if rem > weakest_rem {
            shard.slots[weakest] = Slot { key, rem, gen, bits };
        }
    }

    /// Doubles a shard, re-seating every entry under the wider mask.
    fn grow(&self, shard: &mut Shard) {
        let prev_len = shard.len;
        let new_len = shard.slots.len() * 2;
        let old = std::mem::replace(
            &mut shard.slots,
            vec![
                Slot {
                    key: [0; KEY_WORDS],
                    rem: EMPTY,
                    gen: 0,
                    bits: 0,
                };
                new_len
            ],
        );
        shard.mask = new_len - 1;
        shard.len = 0;
        for moved in old {
            if moved.rem != EMPTY {
                let hash = self.hash_of_state(moved.key, moved.bits);
                // Re-seat inline (the shard lock is already held).
                let base = hash as usize;
                let mut weakest = 0usize;
                let mut weakest_rem = EMPTY;
                let mut seated = false;
                for i in 0..Self::WAYS {
                    let idx = (base + i) & shard.mask;
                    let slot = shard.slots[idx];
                    if slot.rem == EMPTY {
                        shard.len += 1;
                        shard.slots[idx] = moved;
                        seated = true;
                        break;
                    }
                    if slot.rem <= weakest_rem {
                        weakest_rem = slot.rem;
                        weakest = idx;
                    }
                }
                if !seated && moved.rem > weakest_rem {
                    shard.slots[weakest] = moved;
                }
            }
        }
        let lost = prev_len.saturating_sub(shard.len);
        if lost > 0 {
            self.len.fetch_sub(lost as u64, Ordering::Relaxed);
        }
    }

    /// The Zobrist hash of an explicit state at the given lane width
    /// (used on rehash and by the canonicalization path, which builds
    /// keys it has no running hash for). Unit keys (`bits == 1`) hash
    /// each set chord's level-1 key; lane keys (`bits == 2` tile-slack,
    /// `bits == 3` waste-slack — same packed encoding, distinct match
    /// domains) fold in one level key per residual unit of every chord.
    pub(crate) fn hash_of_state(&self, key: [u64; KEY_WORDS], bits: u8) -> u64 {
        let mut hash = 0u64;
        match bits {
            1 => {
                for (wi, w) in key.iter().enumerate() {
                    let mut bits = *w;
                    while bits != 0 {
                        let c = (wi as u32) * 64 + bits.trailing_zeros();
                        hash ^= self.zobrist[c as usize];
                        bits &= bits - 1;
                    }
                }
            }
            2 | 3 => {
                for (wi, w) in key.iter().enumerate() {
                    let mut lanes = *w;
                    while lanes != 0 {
                        let p = lanes.trailing_zeros() & !1;
                        let c = (wi as u32) * 32 + p / 2;
                        let r = (w >> p) & 0b11;
                        for v in 1..=r as u32 {
                            hash ^= self.chord_level_key(c, v);
                        }
                        lanes &= !(0b11 << p);
                    }
                }
            }
            other => unreachable!("unknown lane width {other}"),
        }
        hash
    }

    /// [`MemoStore::hash_of_state`] for a unit (1-bit) key.
    #[cfg(test)]
    pub(crate) fn hash_of_key(&self, key: [u64; KEY_WORDS]) -> u64 {
        self.hash_of_state(key, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TileUniverse;
    use cyclecover_ring::Ring;

    fn universe(n: u32) -> TileUniverse {
        TileUniverse::new(Ring::new(n), n as usize)
    }

    #[test]
    fn dominated_only_with_equal_or_less_slack() {
        let memo = MemoStore::new(&universe(12), 1 << 20).expect("n=12 fits");
        let gen = memo.attach();
        let key = [0b1011, 0b1, 0, 0];
        let hash = memo.hash_of_key(key);
        assert!(memo.dominated(hash, key, 1, 5).is_none());
        memo.record(hash, key, 1, 5, gen);
        assert!(
            memo.dominated(hash, key, 1, 5).is_some(),
            "equal slack prunes"
        );
        assert!(
            memo.dominated(hash, key, 1, 4).is_some(),
            "less slack prunes"
        );
        assert!(
            memo.dominated(hash, key, 1, 6).is_none(),
            "more slack explores"
        );
        memo.record(hash, key, 1, 7, gen);
        assert!(
            memo.dominated(hash, key, 1, 7).is_some(),
            "record keeps the maximum slack"
        );
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn hits_carry_the_recording_generation() {
        let memo = MemoStore::new(&universe(10), 1 << 20).expect("fits");
        let g1 = memo.attach();
        let g2 = memo.attach();
        assert_ne!(g1, g2, "every searcher draws a fresh generation");
        let key = [0b110, 0, 0, 0];
        let hash = memo.hash_of_key(key);
        memo.record(hash, key, 1, 3, g1);
        assert_eq!(
            memo.dominated(hash, key, 1, 2),
            Some(g1),
            "the hit names who recorded it"
        );
        // A strengthening write re-tags the entry with its improver.
        memo.record(hash, key, 1, 6, g2);
        assert_eq!(memo.dominated(hash, key, 1, 4), Some(g2));
        // A weaker write leaves owner and strength alone.
        memo.record(hash, key, 1, 1, g1);
        assert_eq!(memo.dominated(hash, key, 1, 6), Some(g2));
    }

    #[test]
    fn distinct_keys_never_alias() {
        // Exact keys: even a forced hash-slot collision cannot prune the
        // wrong state.
        let memo = MemoStore::new(&universe(10), 0).expect("floor budget");
        let gen = memo.attach();
        let a = [0x1u64, 0, 0, 0];
        let b = [0x2u64, 0, 0, 0];
        memo.record(memo.hash_of_key(a), a, 1, 2, gen);
        assert!(memo.dominated(memo.hash_of_key(b), b, 1, 1).is_none());
    }

    #[test]
    fn lane_widths_never_alias() {
        // A unit uncovered set and a λ-fold residual lane vector can
        // produce the same raw words over the same universe; the lane
        // width discriminant must keep them apart in a shared store.
        let memo = MemoStore::new(&universe(10), 1 << 20).unwrap();
        let gen = memo.attach();
        let key = [0b0101_0101u64, 0, 0, 0];
        memo.record(memo.hash_of_state(key, 1), key, 1, 4, gen);
        assert!(
            memo.dominated(memo.hash_of_state(key, 2), key, 2, 1).is_none(),
            "a unit entry must never prune a lane state"
        );
        memo.record(memo.hash_of_state(key, 2), key, 2, 6, gen);
        assert!(memo.dominated(memo.hash_of_state(key, 2), key, 2, 6).is_some());
        assert!(
            memo.dominated(memo.hash_of_state(key, 1), key, 1, 6).is_none(),
            "the lane write must not strengthen the unit entry"
        );
        assert!(memo.dominated(memo.hash_of_state(key, 1), key, 1, 4).is_some());
        assert_eq!(memo.len(), 2, "the two widths occupy distinct slots");
        // Width 3 (partition waste slack) shares the lane encoding —
        // identical raw words AND identical hash — but must match only
        // its own entries: its `rem` is measured in unused cycle
        // length, not tiles, so cross-width pruning would be unsound.
        assert_eq!(
            memo.hash_of_state(key, 3),
            memo.hash_of_state(key, 2),
            "widths 2 and 3 share the packed-lane hash"
        );
        assert!(
            memo.dominated(memo.hash_of_state(key, 3), key, 3, 1).is_none(),
            "a tile-slack entry must never prune a waste-slack state"
        );
        memo.record(memo.hash_of_state(key, 3), key, 3, 9, gen);
        assert!(memo.dominated(memo.hash_of_state(key, 3), key, 3, 9).is_some());
        assert!(
            memo.dominated(memo.hash_of_state(key, 2), key, 2, 7).is_none(),
            "the waste-slack write must not strengthen the tile-slack entry"
        );
        assert_eq!(memo.len(), 3, "all three widths occupy distinct slots");
    }

    #[test]
    fn grows_and_survives_rehash() {
        let u = universe(16);
        let memo = MemoStore::new(&u, 8 << 20).expect("fits");
        let gen = memo.attach();
        let mut rng = StdRng::seed_from_u64(7);
        // Keys must only use real chord bits (n = 16 has 120 chords).
        let hi_mask = (1u64 << (u.num_chords() - 64)) - 1;
        let keys: Vec<[u64; KEY_WORDS]> = (0..40_000)
            .map(|_| [rng.next_u64(), rng.next_u64() & hi_mask, 0, 0])
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            memo.record(memo.hash_of_key(k), k, 1, (i % 17) as u32, gen);
        }
        assert!(
            memo.len() > (SHARDS * MIN_SLOTS) as u64 * 3 / 4,
            "shards grew past their seed size (len = {})",
            memo.len()
        );
        let survived = keys
            .iter()
            .enumerate()
            .filter(|&(i, &k)| {
                memo.dominated(memo.hash_of_key(k), k, 1, (i % 17) as u32)
                    .is_some()
            })
            .count();
        // Collisions may evict a few entries (pruning loss, never a
        // correctness issue); the overwhelming majority must survive.
        assert!(
            survived * 100 >= keys.len() * 90,
            "only {survived}/{} entries survived the rehashes",
            keys.len()
        );
    }

    #[test]
    fn lane_entries_survive_rehash() {
        let u = universe(12);
        let memo = MemoStore::new(&u, 8 << 20).expect("fits");
        let gen = memo.attach();
        let mut rng = StdRng::seed_from_u64(11);
        // Residual lane vectors over n = 12's 66 chords: 132 lane bits
        // across words 0..3 (word 2 uses its low 4 bits).
        let keys: Vec<[u64; KEY_WORDS]> = (0..30_000)
            .map(|_| [rng.next_u64(), rng.next_u64(), rng.next_u64() & 0xF, 0])
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            memo.record(memo.hash_of_state(k, 2), k, 2, (i % 13) as u32, gen);
        }
        let survived = keys
            .iter()
            .enumerate()
            .filter(|&(i, &k)| {
                memo.dominated(memo.hash_of_state(k, 2), k, 2, (i % 13) as u32)
                    .is_some()
            })
            .count();
        assert!(
            survived * 100 >= keys.len() * 90,
            "only {survived}/{} lane entries survived the rehashes",
            keys.len()
        );
    }

    #[test]
    fn zobrist_stream_is_deterministic() {
        let a = MemoStore::new(&universe(11), 1 << 20).unwrap();
        let b = MemoStore::new(&universe(11), 1 << 20).unwrap();
        for c in 0..a.num_chords {
            assert_eq!(a.chord_key(c), b.chord_key(c));
            for v in 1..=3 {
                assert_eq!(a.chord_level_key(c, v), b.chord_level_key(c, v));
            }
        }
        assert_eq!(
            a.chord_key(3),
            a.chord_level_key(3, 1),
            "level 1 is the historical per-chord stream"
        );
    }

    #[test]
    fn incompatible_universes_are_refused() {
        let memo = MemoStore::new(&universe(10), 1 << 20).unwrap();
        assert!(memo.compatible(&universe(10)));
        assert!(!memo.compatible(&universe(9)), "different ring");
        assert!(
            !memo.compatible(&TileUniverse::new(Ring::new(10), 3)),
            "same ring, different tile set"
        );
    }

    #[test]
    fn single_threaded_access_never_contends() {
        let memo = MemoStore::new(&universe(10), 1 << 20).unwrap();
        let gen = memo.attach();
        for i in 0..1_000u64 {
            // n = 10 has 45 chords: keep keys inside the chord range.
            let key = [(i * 0x9E37_79B9) & ((1u64 << 45) - 1), 0, 0, 0];
            memo.record(memo.hash_of_key(key), key, 1, (i % 5) as u32, gen);
            memo.dominated(memo.hash_of_key(key), key, 1, 1);
        }
        assert_eq!(memo.contention(), 0);
    }
}
