//! Exact-cover machinery: the generic Dancing Links substrate and the
//! **slack-budgeted partition kernel** built in its image.
//!
//! Two layers live here:
//!
//! * [`ExactCover`] — classic Dancing Links (Knuth's Algorithm X): one
//!   arena of doubly-linked nodes in four directions, column headers
//!   with live counts, MRV column selection. Used by the design-theory
//!   baselines (`cyclecover-design`) and tests that need "find any
//!   exact decomposition".
//! * `PartitionCore` / `search_partition` — the cycle-covering
//!   search re-posed as a *slack-budgeted exact cover*: columns are the
//!   priority chords (packed 2-bit residual lanes for demands ≤ 3, the
//!   [`crate::bitset::LaneSet`] the λ-fold core uses), rows are the
//!   tiles, and one extra global resource — the **waste budget**
//!   `slack = budget·n − λ·Σd(e)` — absorbs every unit of cycle length
//!   not spent covering residual demand. The paper's capacity bound
//!   `⌈λ·Σd(e)/n⌉` (Theorem 1 / Proposition 1) says exactly that a
//!   `k`-tile covering wastes `k·n − λ·Σd(e)`; near-tight instances
//!   (the Theorem 1/2 rows, the n ≡ 0 (mod 8) probes) leave the search
//!   almost no slack, and this kernel exploits it:
//!
//!   * **MRV column selection.** Instead of branching on the
//!     highest-priority residual chord, each node branches on the
//!     support chord with the *fewest* candidates still affordable
//!     under the remaining slack (counted against each tile's static
//!     waste `n − load`, precomputed sorted per chord — a
//!     `partition_point` per support chord).
//!   * **Full-load propagation.** A candidate whose exact waste
//!     increment would overdraw the slack is dropped at scoring time —
//!     the same capacity argument that would prune it as a child node,
//!     applied without spawning the node. Once remaining slack falls
//!     below the cheapest positive tile waste, only full-load tiles
//!     survive and the candidate set collapses to the partition rows.
//!   * **Reused machinery, where sound.** Subset-dominance filtering
//!     (waste-filter first, then dominance: a dominator covers a
//!     superset of the dominated tile's live chords, so its waste
//!     increment is no larger and it survives the filter whenever the
//!     dominated tile does), dihedral orbit reduction (pointwise, as
//!     the lane core), the capacity/diameter/vertex-degree and
//!     parity/T-join bounds, in-kernel deadline/cancel checks, and the
//!     refutation memo — keyed by the packed residual lanes under a
//!     **waste-slack** `rem` (lane width tag 3 in `crate::memo`):
//!     "no completion of this residual state wastes ≤ `rem`". Since a
//!     `k`-tile completion of a state `R` wastes exactly
//!     `k·n − Σ residual-dist(R)`, the statement is budget-free and
//!     monotone in `rem`, so the store's dominated/record rules apply
//!     unchanged.

use crate::api::Exhaustion;
use crate::bitset::{ChordSet, LaneSet, LANES_PER_WORD, LANE_LOW};
use crate::bnb::{CoverSpec, Outcome, RunLimits, Stats, SymmetryMode};
use crate::lower_bound::{diameter_slack_bound, parity_join_bound_from_odd};
use crate::memo::{MemoStore, KEY_WORDS};
use crate::search_core::LaneTables;
use crate::tiles::DihedralTables;
use crate::TileUniverse;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A (mutable) exact-cover problem instance.
///
/// Columns are the universe elements `0..num_cols`; rows are subsets added
/// via [`ExactCover::add_row`]. [`ExactCover::solve_first`] searches for a
/// set of rows covering every column exactly once.
pub struct ExactCover {
    /// left/right/up/down/column links per node; nodes 0..=num_cols are the
    /// root (0) and column headers (1..=num_cols).
    left: Vec<u32>,
    right: Vec<u32>,
    up: Vec<u32>,
    down: Vec<u32>,
    col: Vec<u32>,
    /// Live node count per column header index (1-based).
    size: Vec<u32>,
    /// Row id per node (u32::MAX for headers).
    row_of: Vec<u32>,
    num_rows: u32,
    /// First node index of each row (for reporting).
    row_start: Vec<u32>,
}

impl ExactCover {
    /// New instance over universe `0..num_cols`.
    pub fn new(num_cols: usize) -> Self {
        let h = num_cols + 1; // root + headers
        let mut ec = ExactCover {
            left: Vec::with_capacity(h),
            right: Vec::with_capacity(h),
            up: Vec::with_capacity(h),
            down: Vec::with_capacity(h),
            col: Vec::with_capacity(h),
            size: vec![0; h],
            row_of: Vec::with_capacity(h),
            num_rows: 0,
            row_start: Vec::new(),
        };
        for i in 0..h as u32 {
            ec.left.push(if i == 0 { h as u32 - 1 } else { i - 1 });
            ec.right.push(if i as usize == h - 1 { 0 } else { i + 1 });
            ec.up.push(i);
            ec.down.push(i);
            ec.col.push(i);
            ec.row_of.push(u32::MAX);
        }
        ec
    }

    /// Adds a row covering the given (distinct) columns; returns its row id.
    ///
    /// # Panics
    /// Panics if `cols` is empty or contains an out-of-range column.
    pub fn add_row(&mut self, cols: &[usize]) -> u32 {
        assert!(!cols.is_empty(), "empty row");
        let rid = self.num_rows;
        self.num_rows += 1;
        let first = self.left.len() as u32;
        self.row_start.push(first);
        for (k, &c) in cols.iter().enumerate() {
            assert!(c + 1 < self.size.len(), "column {c} out of range");
            let header = (c + 1) as u32;
            let node = self.left.len() as u32;
            // Vertical insertion just above the header (= column bottom).
            let above = self.up[header as usize];
            self.up.push(above);
            self.down.push(header);
            self.down[above as usize] = node;
            self.up[header as usize] = node;
            // Horizontal circular links within the row.
            if k == 0 {
                self.left.push(node);
                self.right.push(node);
            } else {
                let prev = node - 1;
                let head = first;
                self.left.push(prev);
                self.right.push(head);
                self.right[prev as usize] = node;
                self.left[head as usize] = node;
            }
            self.col.push(header);
            self.size[header as usize] += 1;
            self.row_of.push(rid);
        }
        rid
    }

    fn cover(&mut self, c: u32) {
        let (l, r) = (self.left[c as usize], self.right[c as usize]);
        self.right[l as usize] = r;
        self.left[r as usize] = l;
        let mut i = self.down[c as usize];
        while i != c {
            let mut j = self.right[i as usize];
            while j != i {
                let (u, d) = (self.up[j as usize], self.down[j as usize]);
                self.down[u as usize] = d;
                self.up[d as usize] = u;
                self.size[self.col[j as usize] as usize] -= 1;
                j = self.right[j as usize];
            }
            i = self.down[i as usize];
        }
    }

    fn uncover(&mut self, c: u32) {
        let mut i = self.up[c as usize];
        while i != c {
            let mut j = self.left[i as usize];
            while j != i {
                let (u, d) = (self.up[j as usize], self.down[j as usize]);
                self.down[u as usize] = j;
                self.up[d as usize] = j;
                self.size[self.col[j as usize] as usize] += 1;
                j = self.left[j as usize];
            }
            i = self.up[i as usize];
        }
        let (l, r) = (self.left[c as usize], self.right[c as usize]);
        self.right[l as usize] = c;
        self.left[r as usize] = c;
    }

    /// Smallest live column (MRV heuristic); `None` if all covered.
    fn choose_column(&self) -> Option<u32> {
        let mut best = None;
        let mut best_size = u32::MAX;
        let mut c = self.right[0];
        while c != 0 {
            let s = self.size[c as usize];
            if s < best_size {
                best_size = s;
                best = Some(c);
                if s == 0 {
                    break;
                }
            }
            c = self.right[c as usize];
        }
        best
    }

    /// Finds one exact cover; returns the selected row ids, or `None`.
    pub fn solve_first(&mut self) -> Option<Vec<u32>> {
        let mut stack = Vec::new();
        if self.search_first(&mut stack) {
            Some(stack)
        } else {
            None
        }
    }

    fn search_first(&mut self, stack: &mut Vec<u32>) -> bool {
        let c = match self.choose_column() {
            None => return true,
            Some(c) => c,
        };
        if self.size[c as usize] == 0 {
            return false;
        }
        self.cover(c);
        let mut r = self.down[c as usize];
        while r != c {
            stack.push(self.row_of[r as usize]);
            let mut j = self.right[r as usize];
            while j != r {
                self.cover(self.col[j as usize]);
                j = self.right[j as usize];
            }
            if self.search_first(stack) {
                return true;
            }
            let mut j = self.left[r as usize];
            while j != r {
                self.uncover(self.col[j as usize]);
                j = self.left[j as usize];
            }
            stack.pop();
            r = self.down[r as usize];
        }
        self.uncover(c);
        false
    }

    /// Counts exact covers up to `limit` (stops early once reached).
    pub fn count_solutions(&mut self, limit: u64) -> u64 {
        let mut count = 0;
        self.count_rec(limit, &mut count);
        count
    }

    fn count_rec(&mut self, limit: u64, count: &mut u64) {
        if *count >= limit {
            return;
        }
        let c = match self.choose_column() {
            None => {
                *count += 1;
                return;
            }
            Some(c) => c,
        };
        if self.size[c as usize] == 0 {
            return;
        }
        self.cover(c);
        let mut r = self.down[c as usize];
        while r != c {
            let mut j = self.right[r as usize];
            while j != r {
                self.cover(self.col[j as usize]);
                j = self.right[j as usize];
            }
            self.count_rec(limit, count);
            let mut j = self.left[r as usize];
            while j != r {
                self.uncover(self.col[j as usize]);
                j = self.left[j as usize];
            }
            r = self.down[r as usize];
        }
        self.uncover(c);
    }
}

// ---------------------------------------------------------------------------
// The slack-budgeted partition kernel
// ---------------------------------------------------------------------------

/// Per-depth iteration state of the partition kernel — the lane/bitset
/// cores' frame, with candidates staged by the MRV column choice.
#[derive(Default)]
struct PartFrame {
    /// `(tile, live coverage, exact waste increment)` scoring scratch.
    scored: Vec<(u32, u32, u32)>,
    /// Candidates surviving the waste filter, dominance, and orbit
    /// filtering, in order.
    cands: Vec<u32>,
    cursor: usize,
    /// Residual-state key/hash at node entry (memo bookkeeping).
    key: [u64; KEY_WORDS],
    hash: u64,
    memoable: bool,
}

/// What happened when the loop entered a node.
enum PartEnter {
    Solved,
    Abort,
    Dead,
    Ready,
}

/// The slack-budgeted exact-cover search over packed residual lanes —
/// [`crate::search_core`]'s lane core re-armed for capacity-tight
/// instances. See the module docs for the column/row/waste-budget
/// formulation and what is reused versus new.
pub(crate) struct PartitionCore<'a> {
    u: &'a TileUniverse,
    lanes: &'a LaneTables,
    budget: u32,
    n: u32,
    /// The root waste budget `budget·n − λ·Σd(e)` (clamped to 0 when
    /// the budget is below capacity — the root bound prune fires before
    /// the slack is ever consulted).
    slack: u64,
    /// Waste spent by the placed prefix: `Σ (n − useful(t))` over
    /// placements, where `useful` counts only newly decremented chords.
    /// Invariant: `placed·n = covered-dist + waste_used`, and the
    /// candidate filter keeps `waste_used ≤ slack` at every node.
    waste_used: u64,

    // ---- residual state, maintained on place/unplace ----
    residual: LaneSet,
    /// Chords with residual > 0 — the unit-machinery view of the state.
    support: ChordSet,
    rem_dist: u64,
    rem_diam: u64,
    deg: Vec<u32>,
    odd: u64,
    hash: u64,

    // ---- MRV tables ----
    /// Static tile wastes (`n − load`) of each chord's candidates,
    /// sorted ascending: `waste_sorted[waste_off[c]..waste_off[c+1]]`.
    /// A `partition_point` at the remaining slack counts how many
    /// candidates of chord `c` are still affordable (static waste lower
    /// bounds the exact increment, so the count never undercounts).
    waste_sorted: Vec<u32>,
    waste_off: Vec<u32>,

    // ---- the explicit stack ----
    frames: Vec<PartFrame>,
    /// `undo[d]`: per lane word, the decrement mask depth `d` applied.
    undo: Vec<Vec<u64>>,
    chosen: Vec<u32>,

    // ---- dominance arena ----
    dom_masks: Vec<ChordSet>,
    dom_spans: Vec<(u32, u32)>,

    // ---- statistics and limits ----
    stats: Stats,
    max_nodes: u64,
    hit_limit: bool,
    stop_cause: Option<Exhaustion>,
    deadline: Option<Instant>,
    cancel: Option<&'a AtomicBool>,

    // ---- symmetry (pointwise, as the lane core) ----
    mode: SymmetryMode,
    strong: bool,
    sym: Option<&'a DihedralTables>,
    spec_group: u64,
    stab_stack: Vec<u64>,
    sym_seen: Vec<u64>,
    sym_stamp: u64,

    // ---- memo (lane width 3: waste-slack entries) ----
    store: Option<&'a MemoStore>,
    gen: u32,
}

impl<'a> PartitionCore<'a> {
    pub(crate) fn new(
        u: &'a TileUniverse,
        spec: &CoverSpec,
        budget: u32,
        lim: &'a RunLimits,
        requested: SymmetryMode,
        store: Option<&'a MemoStore>,
        lanes: &'a LaneTables,
    ) -> Self {
        let m = u.num_chords();
        assert_eq!(spec.demand.len(), m as usize, "spec size mismatch");
        assert!(
            spec.max_demand() <= 3,
            "partition kernel requires demands ≤ 3"
        );
        let strong = requested != SymmetryMode::Off;
        let (mode, sym, spec_group) = crate::bnb::resolve_symmetry(u, spec, requested);

        let n = u.ring().n();
        let diam = u.diam_chords();
        let mut residual = LaneSet::zero(m);
        let mut support = ChordSet::empty(m);
        let mut rem_dist = 0u64;
        let mut rem_diam = 0u64;
        let mut deg = vec![0u32; n as usize];
        for pri in 0..m {
            let need = spec.demand[u.dense_of_pri(pri) as usize];
            if need > 0 {
                residual.set(pri, need);
                support.insert(pri);
                rem_dist += need as u64 * u.dist_of_pri(pri) as u64;
                if pri < diam {
                    rem_diam += need as u64;
                }
                let (a, b) = u.chord_ends_of_pri(pri);
                deg[a as usize] += need;
                deg[b as usize] += need;
            }
        }
        let odd = deg.iter().filter(|&&d| d & 1 == 1).count() as u64;
        let slack = (budget as u64 * n as u64).saturating_sub(rem_dist);

        let mut waste_off = Vec::with_capacity(m as usize + 1);
        waste_off.push(0u32);
        let mut waste_sorted = Vec::new();
        for c in 0..m {
            let start = waste_sorted.len();
            waste_sorted.extend(u.candidates_pri(c).iter().map(|&t| u.tile_waste(t)));
            waste_sorted[start..].sort_unstable();
            waste_off.push(waste_sorted.len() as u32);
        }

        let store = store.filter(|s| s.compatible(u));
        let gen = store.map_or(0, |s| s.attach());
        let hash = store.map_or(0, |s| {
            support.iter().fold(0u64, |mut h, c| {
                for v in 1..=residual.get(c) {
                    h ^= s.chord_level_key(c, v);
                }
                h
            })
        });

        let max_cands = u.max_candidates() as usize;
        PartitionCore {
            u,
            lanes,
            budget,
            n,
            slack,
            waste_used: 0,
            residual,
            support,
            rem_dist,
            rem_diam,
            deg,
            odd,
            hash,
            waste_sorted,
            waste_off,
            frames: Vec::new(),
            undo: Vec::new(),
            chosen: Vec::new(),
            dom_masks: (0..max_cands).map(|_| ChordSet::empty(m)).collect(),
            dom_spans: vec![(0, 0); max_cands],
            stats: Stats {
                sym_factor: 1,
                partition_probes: 1,
                ..Stats::default()
            },
            max_nodes: lim.max_nodes,
            hit_limit: false,
            stop_cause: None,
            deadline: lim.deadline,
            cancel: lim.cancel.as_ref().map(|c| c.flag()),
            mode,
            strong,
            sym,
            spec_group,
            stab_stack: if mode == SymmetryMode::Full {
                vec![spec_group]
            } else {
                Vec::new()
            },
            sym_seen: Vec::new(),
            sym_stamp: 0,
            store,
            gen,
        }
    }

    /// Places tile `t` — the lane core's masked subtract and incremental
    /// sweep, plus waste accounting: the placement's exact waste
    /// increment is `n` minus the distance of the chords it newly
    /// decremented.
    fn place(&mut self, t: u32) {
        if self.mode == SymmetryMode::Full {
            let top = *self.stab_stack.last().expect("stab stack seeded");
            let stab = self.sym.expect("tables exist in Full mode").tile_stab(t);
            self.stab_stack.push(top & stab);
        }
        let depth = self.chosen.len();
        if self.undo.len() == depth {
            self.undo.push(vec![0u64; self.lanes.lane_words()]);
        }
        let (llo, lhi) = self.lanes.span(t);
        let diam = self.u.diam_chords();
        let mut useful = 0u64;
        for w in llo as usize..lhi as usize {
            let before = self.residual.words()[w];
            let sub = self.residual.place_word(w, self.lanes.mask(t)[w]);
            self.undo[depth][w] = sub;
            let mut m = sub;
            while m != 0 {
                let p = m.trailing_zeros();
                let c = (w as u32) * LANES_PER_WORD + p / 2;
                let old = (before >> p & 0b11) as u32;
                let d = self.u.dist_of_pri(c) as u64;
                useful += d;
                self.rem_dist -= d;
                self.rem_diam -= (c < diam) as u64;
                let (a, b) = self.u.chord_ends_of_pri(c);
                for v in [a, b] {
                    let dv = &mut self.deg[v as usize];
                    if *dv & 1 == 1 {
                        self.odd -= 1;
                    } else {
                        self.odd += 1;
                    }
                    *dv -= 1;
                }
                if old == 1 {
                    self.support.remove(c);
                }
                if let Some(store) = self.store {
                    self.hash ^= store.chord_level_key(c, old);
                }
                m &= m - 1;
            }
        }
        debug_assert!(useful <= self.n as u64, "a tile covers at most one cycle length");
        self.waste_used += self.n as u64 - useful;
        self.chosen.push(t);
    }

    /// Reverts the most recent placement (including its waste).
    fn unplace(&mut self) {
        let t = self.chosen.pop().expect("unplace without place");
        let depth = self.chosen.len();
        let (llo, lhi) = self.lanes.span(t);
        let diam = self.u.diam_chords();
        let mut useful = 0u64;
        for w in llo as usize..lhi as usize {
            let sub = self.undo[depth][w];
            if sub == 0 {
                continue;
            }
            self.residual.unplace_word(w, sub);
            let after = self.residual.words()[w];
            let mut m = sub;
            while m != 0 {
                let p = m.trailing_zeros();
                let c = (w as u32) * LANES_PER_WORD + p / 2;
                let val = (after >> p & 0b11) as u32;
                let d = self.u.dist_of_pri(c) as u64;
                useful += d;
                self.rem_dist += d;
                self.rem_diam += (c < diam) as u64;
                let (a, b) = self.u.chord_ends_of_pri(c);
                for v in [a, b] {
                    let dv = &mut self.deg[v as usize];
                    if *dv & 1 == 1 {
                        self.odd -= 1;
                    } else {
                        self.odd += 1;
                    }
                    *dv += 1;
                }
                if val == 1 {
                    self.support.insert(c);
                }
                if let Some(store) = self.store {
                    self.hash ^= store.chord_level_key(c, val);
                }
                m &= m - 1;
            }
        }
        self.waste_used -= self.n as u64 - useful;
        if self.mode == SymmetryMode::Full {
            self.stab_stack.pop();
        }
    }

    /// The cheap bound trio (capacity / diameter / vertex degree) over
    /// the residual-weighted ingredients — the lane core's bound. The
    /// capacity term is the waste budget seen from the other side:
    /// `used + ⌈rem_dist/n⌉ > budget ⟺ waste_used > slack − (future
    /// minimum waste)`.
    fn remaining_lb(&self) -> u64 {
        let n = self.n as u64;
        let mut lb = self.rem_dist.div_ceil(n).max(self.rem_diam);
        for &d in &self.deg {
            lb = lb.max((d as u64).div_ceil(2));
        }
        lb
    }

    /// The strong bound: parity/T-join first, then the diameter-slack
    /// dual over the support set — both valid under multiplicities for
    /// the same reasons as in the lane core.
    fn strong_lb(&self, stop_above: u64) -> u64 {
        let parity = parity_join_bound_from_odd(self.n, self.rem_dist, self.odd);
        if parity > stop_above {
            return parity;
        }
        diameter_slack_bound(self.u, &self.support, self.rem_dist, stop_above).max(parity)
    }

    /// The memo key: the packed residual lane words, zero-padded.
    fn state_key(&self) -> [u64; KEY_WORDS] {
        let words = self.residual.words();
        debug_assert!(words.len() <= KEY_WORDS, "store.compatible caps chords at 128");
        let mut key = [0u64; KEY_WORDS];
        key[..words.len()].copy_from_slice(words);
        key
    }

    /// MRV column selection: the support chord with the fewest
    /// candidates affordable under the remaining slack (counted by
    /// `partition_point` over the chord's sorted static wastes; ties
    /// break toward the higher-priority chord, so a uniform count
    /// reproduces the priority branch rule). With zero remaining slack
    /// only full-load tiles count — the exact-partition collapse.
    fn choose_branch(&self) -> u32 {
        let rem_slack = self.slack - self.waste_used;
        let mut best = 0u32;
        let mut best_count = usize::MAX;
        for c in self.support.iter() {
            let lo = self.waste_off[c as usize] as usize;
            let hi = self.waste_off[c as usize + 1] as usize;
            let count = self.waste_sorted[lo..hi].partition_point(|&w| w as u64 <= rem_slack);
            if count < best_count {
                best_count = count;
                best = c;
                if count == 0 {
                    break;
                }
            }
        }
        best
    }

    /// One node's entry sequence: satisfied / limits / bounds / memo /
    /// candidate staging — the lane core's, with the MRV branch choice
    /// and the waste-slack memo domain.
    fn enter_node(&mut self, check_memo: bool) -> PartEnter {
        if self.support.is_empty() {
            return PartEnter::Solved;
        }
        self.stats.nodes += 1;
        if self.stats.nodes > self.max_nodes {
            self.hit_limit = true;
            self.stop_cause = Some(Exhaustion::NodeBudget);
            return PartEnter::Abort;
        }
        if self.stats.nodes.is_multiple_of(4096) {
            if let Some(flag) = self.cancel {
                if flag.load(Ordering::Relaxed) {
                    self.hit_limit = true;
                    self.stop_cause = Some(Exhaustion::Cancelled);
                    return PartEnter::Abort;
                }
            }
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.hit_limit = true;
                    self.stop_cause = Some(Exhaustion::Deadline);
                    return PartEnter::Abort;
                }
            }
        }
        debug_assert!(
            self.waste_used <= self.slack,
            "the candidate filter keeps every placement within the waste budget"
        );
        let used = self.chosen.len() as u64;
        if used + self.remaining_lb() > self.budget as u64 {
            self.stats.pruned += 1;
            return PartEnter::Dead;
        }
        if self.strong {
            let slack_tiles = self.budget as u64 - used;
            if self.strong_lb(slack_tiles) > slack_tiles {
                self.stats.pruned += 1;
                return PartEnter::Dead;
            }
        }
        let mut key = [0u64; KEY_WORDS];
        let mut khash = 0u64;
        let mut memoable = false;
        if let Some(store) = self.store {
            let k = self.state_key();
            if check_memo {
                let rem_slack = (self.slack - self.waste_used) as u32;
                if let Some(owner) = store.dominated(self.hash, k, 3, rem_slack) {
                    self.stats.memo_hits += 1;
                    if owner != self.gen {
                        self.stats.shared_hits += 1;
                    }
                    return PartEnter::Dead;
                }
            }
            key = k;
            khash = self.hash;
            memoable = true;
        }
        let branch = self.choose_branch();
        self.fill_candidates(branch);
        let depth = self.chosen.len();
        let f = &mut self.frames[depth];
        f.cursor = 0;
        f.key = key;
        f.hash = khash;
        f.memoable = memoable;
        PartEnter::Ready
    }

    /// Scores the branch chord's candidates with their **exact** waste
    /// increment, drops any that would overdraw the slack (the
    /// full-load propagation: at zero remaining slack only exact
    /// partition rows survive), then sorts, dominance-filters, and
    /// orbit-filters as the lane core does. The waste filter runs
    /// first, so dominance stays sound: a dominator's waste increment
    /// never exceeds its dominated tile's.
    fn fill_candidates(&mut self, branch: u32) {
        let depth = self.chosen.len();
        while self.frames.len() <= depth {
            self.frames.push(PartFrame::default());
        }
        let u = self.u;
        let n = self.n;
        let rem_slack = self.slack - self.waste_used;
        let mut scored = std::mem::take(&mut self.frames[depth].scored);
        let mut cands = std::mem::take(&mut self.frames[depth].cands);
        scored.clear();
        cands.clear();
        for &t in u.candidates_pri(branch) {
            let (lo, hi) = u.tile_mask_span(t);
            let mut cov = 0u32;
            let mut useful = 0u32;
            for (wi, (a, b)) in u.tile_mask(t).words()[lo as usize..hi as usize]
                .iter()
                .zip(&self.support.words()[lo as usize..hi as usize])
                .enumerate()
            {
                let mut w = a & b;
                cov += w.count_ones();
                while w != 0 {
                    let i = (lo + wi as u32) * 64 + w.trailing_zeros();
                    useful += u.dist_of_pri(i);
                    w &= w - 1;
                }
            }
            if cov > 0 {
                debug_assert!(useful <= n, "a tile covers at most one cycle length");
                let waste = n - useful;
                if waste as u64 > rem_slack {
                    // The child would overdraw the waste budget — the
                    // capacity prune it would hit as a node, applied
                    // without spawning one.
                    self.stats.pruned += 1;
                    continue;
                }
                scored.push((t, cov, waste));
            }
        }
        scored.sort_by_key(|&(_, cov, waste)| (std::cmp::Reverse(cov), waste));

        let c = scored.len();
        debug_assert!(c <= self.dom_masks.len(), "arena sized from max_candidates");
        if c > 1 {
            for (slot, &(t, _, _)) in scored.iter().enumerate() {
                let (lo, hi) = u.tile_mask_span(t);
                let (plo, phi) = self.dom_spans[slot];
                self.dom_masks[slot].clear_words(plo as usize, phi as usize);
                u.tile_mask(t).intersection_into_in(
                    &self.support,
                    &mut self.dom_masks[slot],
                    lo as usize,
                    hi as usize,
                );
                self.dom_spans[slot] = (lo, hi);
            }
            for (i, &(t, _, _)) in scored.iter().enumerate() {
                if i > 0 {
                    let (lo, hi) = u.tile_mask_span(t);
                    let (earlier, rest) = self.dom_masks.split_at(i);
                    let mask_i = &rest[0];
                    if earlier
                        .iter()
                        .any(|prior| mask_i.is_subset_of_in(prior, lo as usize, hi as usize))
                    {
                        self.stats.dominated += 1;
                        continue;
                    }
                }
                cands.push(t);
            }
        } else {
            cands.extend(scored.iter().map(|&(t, _, _)| t));
        }

        self.filter_symmetric(branch, &mut cands);
        let f = &mut self.frames[depth];
        f.scored = scored;
        f.cands = cands;
    }

    /// Sibling orbit filtering, pointwise only — the lane core's rule
    /// verbatim: `Root` at the empty prefix under the spec group,
    /// `Full` at every depth under the pointwise prefix stabilizer.
    fn filter_symmetric(&mut self, branch: u32, cands: &mut Vec<u32>) {
        let Some(sym) = self.sym else { return };
        let group = match self.mode {
            SymmetryMode::Off => return,
            SymmetryMode::Root => {
                if !self.chosen.is_empty() {
                    return;
                }
                self.spec_group
            }
            SymmetryMode::Full => *self.stab_stack.last().expect("stab stack seeded"),
        };
        let filter = group & sym.chord_stab(branch);
        if self.chosen.is_empty() {
            self.stats.sym_factor = self.stats.sym_factor.max(filter.count_ones());
        }
        if filter & !1 == 0 {
            return;
        }
        if self.sym_seen.len() < sym.num_tiles() as usize {
            self.sym_seen.resize(sym.num_tiles() as usize, 0);
        }
        self.sym_stamp += 1;
        let stamp = self.sym_stamp;
        let sym_seen = &mut self.sym_seen;
        let stats = &mut self.stats;
        cands.retain(|&t| {
            let mut elements = filter & !1;
            while elements != 0 {
                let g = elements.trailing_zeros();
                elements &= elements - 1;
                let image = sym.tile_image(g, t);
                if image != t && sym_seen[image as usize] == stamp {
                    stats.sym_pruned += 1;
                    return false;
                }
            }
            sym_seen[t as usize] = stamp;
            true
        });
    }

    /// Drives the search from the current placement depth — the lane
    /// core's loop with waste-slack memo records.
    fn run(&mut self) -> bool {
        let base = self.chosen.len();
        let mut entering = true;
        let mut check_memo = true;
        loop {
            if entering {
                match self.enter_node(check_memo) {
                    PartEnter::Solved => return true,
                    PartEnter::Abort => return false,
                    PartEnter::Dead => {
                        if self.chosen.len() == base {
                            return false;
                        }
                        self.unplace();
                        entering = false;
                        continue;
                    }
                    PartEnter::Ready => {}
                }
            }
            let depth = self.chosen.len();
            let f = &mut self.frames[depth];
            if f.cursor < f.cands.len() {
                let t = f.cands[f.cursor];
                f.cursor += 1;
                if self.skip_candidate(t) {
                    entering = false;
                    continue;
                }
                self.place(t);
                entering = true;
                check_memo = false;
            } else {
                if f.memoable {
                    let (hash, key) = (f.hash, f.key);
                    let rem = (self.slack - self.waste_used) as u32;
                    self.store
                        .expect("memoable implies a store")
                        .record(hash, key, 3, rem, self.gen);
                }
                if depth == base {
                    return false;
                }
                self.unplace();
                entering = false;
            }
        }
    }

    /// Probes the store for candidate `t`'s child residual state before
    /// placing it, under the child's remaining *waste* slack — the lane
    /// core's pre-probe in the waste-slack domain.
    fn skip_candidate(&mut self, t: u32) -> bool {
        let Some(store) = self.store else {
            return false;
        };
        let mut key = self.state_key();
        let mut h = self.hash;
        let mut useful = 0u64;
        let (llo, lhi) = self.lanes.span(t);
        for (w, kw) in key
            .iter_mut()
            .enumerate()
            .take(lhi as usize)
            .skip(llo as usize)
        {
            let r = *kw;
            let sub = (r | r >> 1) & self.lanes.mask(t)[w] & LANE_LOW;
            *kw = r - sub;
            let mut m = sub;
            while m != 0 {
                let p = m.trailing_zeros();
                let c = (w as u32) * LANES_PER_WORD + p / 2;
                useful += self.u.dist_of_pri(c) as u64;
                h ^= store.chord_level_key(c, (r >> p & 0b11) as u32);
                m &= m - 1;
            }
        }
        if key == [0; KEY_WORDS] {
            return false;
        }
        // Candidates were filtered against the node's slack, so the
        // child's remaining waste budget never underflows.
        let child_rem = self.slack - self.waste_used - (self.n as u64 - useful);
        if let Some(owner) = store.dominated(h, key, 3, child_rem as u32) {
            self.stats.memo_hits += 1;
            if owner != self.gen {
                self.stats.shared_hits += 1;
            }
            return true;
        }
        false
    }

    /// Final statistics (stamps the store's resident entry count).
    fn take_stats(&mut self) -> Stats {
        self.stats.memo_entries = self.store.map_or(0, |s| s.len());
        self.stats
    }
}

/// Budgeted search through the slack-budgeted partition kernel — the
/// engine path for capacity-tight instances with demands ≤ 3. Same
/// contract as `search_lanes`; `stats.partition_probes` records the
/// route for certificate provenance.
pub(crate) fn search_partition(
    u: &TileUniverse,
    spec: &CoverSpec,
    budget: u32,
    lim: &RunLimits,
    sym: SymmetryMode,
    store: Option<&MemoStore>,
) -> (Outcome, Stats, Option<Exhaustion>) {
    let lanes = LaneTables::build(u);
    let mut core = PartitionCore::new(u, spec, budget, lim, sym, store, &lanes);
    if core.run() {
        let chosen = core.chosen.clone();
        (Outcome::Feasible(chosen), core.take_stats(), None)
    } else if core.hit_limit {
        let cause = core.stop_cause;
        (Outcome::NodeLimit, core.take_stats(), cause)
    } else {
        (Outcome::Infeasible, core.take_stats(), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Knuth's canonical 7-column example.
    #[test]
    fn knuth_example() {
        let mut ec = ExactCover::new(7);
        ec.add_row(&[2, 4, 5]); // row 0
        ec.add_row(&[0, 3, 6]); // row 1
        ec.add_row(&[1, 2, 5]); // row 2
        ec.add_row(&[0, 3]); // row 3
        ec.add_row(&[1, 6]); // row 4
        ec.add_row(&[3, 4, 6]); // row 5
        let mut sol = ec.solve_first().expect("has a solution");
        sol.sort_unstable();
        assert_eq!(sol, vec![0, 3, 4]);
    }

    #[test]
    fn infeasible_instance() {
        let mut ec = ExactCover::new(3);
        ec.add_row(&[0, 1]);
        ec.add_row(&[1, 2]);
        assert!(ec.solve_first().is_none());
        assert_eq!(ec.count_solutions(10), 0);
    }

    #[test]
    fn counts_all_perfect_matchings_of_k4() {
        // Universe = 4 vertices; rows = the 6 edges of K4. Perfect matchings
        // of K4 = 3.
        let mut ec = ExactCover::new(4);
        for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            ec.add_row(&[a, b]);
        }
        assert_eq!(ec.count_solutions(100), 3);
    }

    #[test]
    fn count_respects_limit() {
        let mut ec = ExactCover::new(2);
        for _ in 0..5 {
            ec.add_row(&[0]);
            ec.add_row(&[1]);
        }
        // 25 solutions total; limit cuts off.
        assert_eq!(ec.count_solutions(7), 7);
        // Structure must still be intact after a limited count: full count works.
        assert_eq!(ec.count_solutions(1000), 25);
    }

    /// Partition of the 6 edges of K4 into two triangles does not exist,
    /// but K4's edges partition into 3 perfect matchings — sanity check the
    /// engine on a graph-flavored instance (universe = edges).
    #[test]
    fn k4_edge_partition_into_triangles_infeasible() {
        // Columns = 6 edges of K4 (dense index), rows = 4 triangles.
        let mut ec = ExactCover::new(6);
        let idx = |u: usize, v: usize| -> usize {
            // dense index in K4
            [[0, 0, 1, 2], [0, 0, 3, 4], [1, 3, 0, 5], [2, 4, 5, 0]][u][v]
        };
        for (a, b, c) in [(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)] {
            ec.add_row(&[idx(a, b), idx(a, c), idx(b, c)]);
        }
        assert!(ec.solve_first().is_none());
    }

    // ---- the slack-budgeted partition kernel ----

    use cyclecover_ring::Ring;

    fn universe(n: u32) -> TileUniverse {
        TileUniverse::new(Ring::new(n), n as usize)
    }

    fn run_partition(
        u: &TileUniverse,
        spec: &CoverSpec,
        budget: u32,
        sym: SymmetryMode,
        store: Option<&MemoStore>,
    ) -> (Outcome, Stats) {
        let lim = RunLimits::nodes_only(50_000_000);
        let (o, s, _) = search_partition(u, spec, budget, &lim, sym, store);
        (o, s)
    }

    fn assert_meets_spec(u: &TileUniverse, spec: &CoverSpec, tiles: &[u32]) {
        let mut covered = vec![0u32; spec.demand.len()];
        for &t in tiles {
            for &c in u.tile_chords(t) {
                covered[u.dense_of_pri(c) as usize] += 1;
            }
        }
        for (dense, (&got, &need)) in covered.iter().zip(&spec.demand).enumerate() {
            assert!(
                got >= need,
                "chord dense index {dense}: covered {got} < demanded {need}"
            );
        }
    }

    #[test]
    fn zero_slack_witnesses_are_exact_partitions() {
        // Odd complete rings are capacity-tight (Σd ≡ 0 mod n): the
        // kernel must return a witness at the capacity budget, and at
        // zero slack that witness is an exact partition of the demand.
        for n in [5u32, 7, 9] {
            let u = universe(n);
            let spec = CoverSpec::complete(n);
            let wsum: u64 = (0..u.num_chords())
                .map(|c| u.dist_of_pri(c) as u64)
                .sum();
            assert_eq!(wsum % n as u64, 0, "odd complete rings have zero slack");
            let budget = (wsum / n as u64) as u32;
            let (o, s) = run_partition(&u, &spec, budget, SymmetryMode::Root, None);
            let Outcome::Feasible(tiles) = o else {
                panic!("n={n}: capacity witness not found: {o:?}");
            };
            assert_eq!(tiles.len() as u32, budget);
            assert_meets_spec(&u, &spec, &tiles);
            // Zero slack: every chord covered exactly once.
            let total: u64 = tiles
                .iter()
                .map(|&t| u.tile_chords(t).len() as u64)
                .sum();
            assert_eq!(total, u.num_chords() as u64, "partition, not a cover");
            assert_eq!(s.partition_probes, 1);
        }
    }

    #[test]
    fn parity_refutes_tight_even_budget_at_the_root() {
        // n = 8, budget 8 = capacity: Theorem 2's parity argument
        // refutes in one node through the in-kernel strong bound.
        let u = universe(8);
        let spec = CoverSpec::complete(8);
        let (o, s) = run_partition(&u, &spec, 8, SymmetryMode::Root, None);
        assert_eq!(o, Outcome::Infeasible);
        assert_eq!(s.nodes, 1, "parity bound fires at the root");
        // Budget 9 (slack n) is feasible: ρ(8) = 9.
        let (o9, _) = run_partition(&u, &spec, 9, SymmetryMode::Root, None);
        let Outcome::Feasible(tiles) = o9 else {
            panic!("rho(8) = 9 witness not found: {o9:?}");
        };
        assert_eq!(tiles.len(), 9);
        assert_meets_spec(&u, &spec, &tiles);
    }

    #[test]
    fn lambda_fold_verdicts_match_the_lane_core() {
        // ρ₂(6) = 9 (slack 0) and ρ₃(6) = 14 (slack 3): the partition
        // kernel must agree with the lane core on verdicts at the
        // optimum and one below, all symmetry modes, memo on and off.
        for (lambda, opt) in [(2u32, 9u32), (3, 14)] {
            let u = universe(6);
            let spec = CoverSpec::lambda_fold(6, lambda);
            for sym in [SymmetryMode::Off, SymmetryMode::Root, SymmetryMode::Full] {
                for memo in [false, true] {
                    let store = memo.then(|| MemoStore::new(&u, 1 << 20).unwrap());
                    for budget in [opt - 1, opt] {
                        let (o, _) = run_partition(&u, &spec, budget, sym, store.as_ref());
                        if budget < opt {
                            assert_eq!(
                                o,
                                Outcome::Infeasible,
                                "lambda={lambda} budget={budget} sym={sym:?} memo={memo}"
                            );
                        } else {
                            let Outcome::Feasible(tiles) = o else {
                                panic!(
                                    "lambda={lambda} budget={budget} sym={sym:?} \
                                     memo={memo}: no witness: {o:?}"
                                );
                            };
                            assert!(tiles.len() as u32 <= budget);
                            assert_meets_spec(&u, &spec, &tiles);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn waste_accounting_bounds_every_witness() {
        // At budget = capacity + 1 the kernel may waste up to slack
        // units; the witness tile count must still respect the budget.
        let u = universe(7);
        let spec = CoverSpec::lambda_fold(7, 2);
        // 2·Σd = 84, capacity 12 (slack 0); probe 13 (slack 7).
        for budget in [12u32, 13] {
            let (o, _) = run_partition(&u, &spec, budget, SymmetryMode::Root, None);
            let Outcome::Feasible(tiles) = o else {
                panic!("budget {budget}: {o:?}");
            };
            assert!(tiles.len() as u32 <= budget);
            assert_meets_spec(&u, &spec, &tiles);
        }
    }
}
