//! Dancing Links (Knuth's Algorithm X) exact-cover engine.
//!
//! Generic substrate used by:
//! * the odd-case optimality cross-checks (Theorem 1's coverings are exact
//!   *partitions* of `E(K_n)` into tiles — an exact-cover instance);
//! * the design-theory baselines (`cyclecover-design`);
//! * assorted tests that need "find any exact decomposition".
//!
//! Classic index-based implementation: one arena of doubly-linked nodes in
//! four directions, column headers with live counts, MRV column selection.

/// A (mutable) exact-cover problem instance.
///
/// Columns are the universe elements `0..num_cols`; rows are subsets added
/// via [`ExactCover::add_row`]. [`ExactCover::solve_first`] searches for a
/// set of rows covering every column exactly once.
pub struct ExactCover {
    /// left/right/up/down/column links per node; nodes 0..=num_cols are the
    /// root (0) and column headers (1..=num_cols).
    left: Vec<u32>,
    right: Vec<u32>,
    up: Vec<u32>,
    down: Vec<u32>,
    col: Vec<u32>,
    /// Live node count per column header index (1-based).
    size: Vec<u32>,
    /// Row id per node (u32::MAX for headers).
    row_of: Vec<u32>,
    num_rows: u32,
    /// First node index of each row (for reporting).
    row_start: Vec<u32>,
}

impl ExactCover {
    /// New instance over universe `0..num_cols`.
    pub fn new(num_cols: usize) -> Self {
        let h = num_cols + 1; // root + headers
        let mut ec = ExactCover {
            left: Vec::with_capacity(h),
            right: Vec::with_capacity(h),
            up: Vec::with_capacity(h),
            down: Vec::with_capacity(h),
            col: Vec::with_capacity(h),
            size: vec![0; h],
            row_of: Vec::with_capacity(h),
            num_rows: 0,
            row_start: Vec::new(),
        };
        for i in 0..h as u32 {
            ec.left.push(if i == 0 { h as u32 - 1 } else { i - 1 });
            ec.right.push(if i as usize == h - 1 { 0 } else { i + 1 });
            ec.up.push(i);
            ec.down.push(i);
            ec.col.push(i);
            ec.row_of.push(u32::MAX);
        }
        ec
    }

    /// Adds a row covering the given (distinct) columns; returns its row id.
    ///
    /// # Panics
    /// Panics if `cols` is empty or contains an out-of-range column.
    pub fn add_row(&mut self, cols: &[usize]) -> u32 {
        assert!(!cols.is_empty(), "empty row");
        let rid = self.num_rows;
        self.num_rows += 1;
        let first = self.left.len() as u32;
        self.row_start.push(first);
        for (k, &c) in cols.iter().enumerate() {
            assert!(c + 1 < self.size.len(), "column {c} out of range");
            let header = (c + 1) as u32;
            let node = self.left.len() as u32;
            // Vertical insertion just above the header (= column bottom).
            let above = self.up[header as usize];
            self.up.push(above);
            self.down.push(header);
            self.down[above as usize] = node;
            self.up[header as usize] = node;
            // Horizontal circular links within the row.
            if k == 0 {
                self.left.push(node);
                self.right.push(node);
            } else {
                let prev = node - 1;
                let head = first;
                self.left.push(prev);
                self.right.push(head);
                self.right[prev as usize] = node;
                self.left[head as usize] = node;
            }
            self.col.push(header);
            self.size[header as usize] += 1;
            self.row_of.push(rid);
        }
        rid
    }

    fn cover(&mut self, c: u32) {
        let (l, r) = (self.left[c as usize], self.right[c as usize]);
        self.right[l as usize] = r;
        self.left[r as usize] = l;
        let mut i = self.down[c as usize];
        while i != c {
            let mut j = self.right[i as usize];
            while j != i {
                let (u, d) = (self.up[j as usize], self.down[j as usize]);
                self.down[u as usize] = d;
                self.up[d as usize] = u;
                self.size[self.col[j as usize] as usize] -= 1;
                j = self.right[j as usize];
            }
            i = self.down[i as usize];
        }
    }

    fn uncover(&mut self, c: u32) {
        let mut i = self.up[c as usize];
        while i != c {
            let mut j = self.left[i as usize];
            while j != i {
                let (u, d) = (self.up[j as usize], self.down[j as usize]);
                self.down[u as usize] = j;
                self.up[d as usize] = j;
                self.size[self.col[j as usize] as usize] += 1;
                j = self.left[j as usize];
            }
            i = self.up[i as usize];
        }
        let (l, r) = (self.left[c as usize], self.right[c as usize]);
        self.right[l as usize] = c;
        self.left[r as usize] = c;
    }

    /// Smallest live column (MRV heuristic); `None` if all covered.
    fn choose_column(&self) -> Option<u32> {
        let mut best = None;
        let mut best_size = u32::MAX;
        let mut c = self.right[0];
        while c != 0 {
            let s = self.size[c as usize];
            if s < best_size {
                best_size = s;
                best = Some(c);
                if s == 0 {
                    break;
                }
            }
            c = self.right[c as usize];
        }
        best
    }

    /// Finds one exact cover; returns the selected row ids, or `None`.
    pub fn solve_first(&mut self) -> Option<Vec<u32>> {
        let mut stack = Vec::new();
        if self.search_first(&mut stack) {
            Some(stack)
        } else {
            None
        }
    }

    fn search_first(&mut self, stack: &mut Vec<u32>) -> bool {
        let c = match self.choose_column() {
            None => return true,
            Some(c) => c,
        };
        if self.size[c as usize] == 0 {
            return false;
        }
        self.cover(c);
        let mut r = self.down[c as usize];
        while r != c {
            stack.push(self.row_of[r as usize]);
            let mut j = self.right[r as usize];
            while j != r {
                self.cover(self.col[j as usize]);
                j = self.right[j as usize];
            }
            if self.search_first(stack) {
                return true;
            }
            let mut j = self.left[r as usize];
            while j != r {
                self.uncover(self.col[j as usize]);
                j = self.left[j as usize];
            }
            stack.pop();
            r = self.down[r as usize];
        }
        self.uncover(c);
        false
    }

    /// Counts exact covers up to `limit` (stops early once reached).
    pub fn count_solutions(&mut self, limit: u64) -> u64 {
        let mut count = 0;
        self.count_rec(limit, &mut count);
        count
    }

    fn count_rec(&mut self, limit: u64, count: &mut u64) {
        if *count >= limit {
            return;
        }
        let c = match self.choose_column() {
            None => {
                *count += 1;
                return;
            }
            Some(c) => c,
        };
        if self.size[c as usize] == 0 {
            return;
        }
        self.cover(c);
        let mut r = self.down[c as usize];
        while r != c {
            let mut j = self.right[r as usize];
            while j != r {
                self.cover(self.col[j as usize]);
                j = self.right[j as usize];
            }
            self.count_rec(limit, count);
            let mut j = self.left[r as usize];
            while j != r {
                self.uncover(self.col[j as usize]);
                j = self.left[j as usize];
            }
            r = self.down[r as usize];
        }
        self.uncover(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Knuth's canonical 7-column example.
    #[test]
    fn knuth_example() {
        let mut ec = ExactCover::new(7);
        ec.add_row(&[2, 4, 5]); // row 0
        ec.add_row(&[0, 3, 6]); // row 1
        ec.add_row(&[1, 2, 5]); // row 2
        ec.add_row(&[0, 3]); // row 3
        ec.add_row(&[1, 6]); // row 4
        ec.add_row(&[3, 4, 6]); // row 5
        let mut sol = ec.solve_first().expect("has a solution");
        sol.sort_unstable();
        assert_eq!(sol, vec![0, 3, 4]);
    }

    #[test]
    fn infeasible_instance() {
        let mut ec = ExactCover::new(3);
        ec.add_row(&[0, 1]);
        ec.add_row(&[1, 2]);
        assert!(ec.solve_first().is_none());
        assert_eq!(ec.count_solutions(10), 0);
    }

    #[test]
    fn counts_all_perfect_matchings_of_k4() {
        // Universe = 4 vertices; rows = the 6 edges of K4. Perfect matchings
        // of K4 = 3.
        let mut ec = ExactCover::new(4);
        for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            ec.add_row(&[a, b]);
        }
        assert_eq!(ec.count_solutions(100), 3);
    }

    #[test]
    fn count_respects_limit() {
        let mut ec = ExactCover::new(2);
        for _ in 0..5 {
            ec.add_row(&[0]);
            ec.add_row(&[1]);
        }
        // 25 solutions total; limit cuts off.
        assert_eq!(ec.count_solutions(7), 7);
        // Structure must still be intact after a limited count: full count works.
        assert_eq!(ec.count_solutions(1000), 25);
    }

    /// Partition of the 6 edges of K4 into two triangles does not exist,
    /// but K4's edges partition into 3 perfect matchings — sanity check the
    /// engine on a graph-flavored instance (universe = edges).
    #[test]
    fn k4_edge_partition_into_triangles_infeasible() {
        // Columns = 6 edges of K4 (dense index), rows = 4 triangles.
        let mut ec = ExactCover::new(6);
        let idx = |u: usize, v: usize| -> usize {
            // dense index in K4
            [[0, 0, 1, 2], [0, 0, 3, 4], [1, 3, 0, 5], [2, 4, 5, 0]][u][v]
        };
        for (a, b, c) in [(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)] {
            ec.add_row(&[idx(a, b), idx(a, c), idx(b, c)]);
        }
        assert!(ec.solve_first().is_none());
    }
}
