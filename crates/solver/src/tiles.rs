//! Enumeration of winding tiles (= DRC-routable cycles) of a ring, with
//! the precomputed per-tile metadata the exact solver's hot path runs on.

use crate::bitset::ChordSet;
use cyclecover_graph::Edge;
use cyclecover_ring::{Ring, Tile};
use std::collections::HashMap;
use std::sync::OnceLock;

/// The universe of candidate covering cycles for exact search on `C_n`:
/// all winding tiles with size in `3..=max_len`, optionally restricted by a
/// maximum gap (arc length).
///
/// By the winding lemma every DRC-routable cycle *is* a tile (a vertex
/// subset in ring order), so enumerating subsets enumerates all admissible
/// covering cycles — there is no loss of generality for the exact solvers.
///
/// # Chord indexing
///
/// Chords have two index spaces:
///
/// * **dense** — [`Edge::dense_index`] order, the external convention used
///   by [`crate::bnb::CoverSpec`] and the rest of the workspace;
/// * **priority** — chords sorted by decreasing branch priority (diameter
///   chords first, then decreasing ring distance, ties by dense index).
///
/// All solver-internal metadata (tile chord lists, bitmasks, distance
/// table) lives in *priority* space, so "highest-priority unsatisfied
/// chord" is simply the first set bit of a [`ChordSet`]. Convert with
/// [`TileUniverse::pri_of_dense`] / [`TileUniverse::dense_of_pri`].
///
/// # Per-tile metadata
///
/// Construction precomputes, per tile: the chord index list (CSR-packed),
/// the chord bitmask, the total shortest-path load, the wasted ring
/// capacity, and the number of diameter-class chords. The branch & bound
/// touches only these tables — never the tile's vertex list — so a search
/// node costs a few word operations instead of per-chord ring arithmetic.
pub struct TileUniverse {
    ring: Ring,
    tiles: Vec<Tile>,
    /// `by_chord[edge.dense_index(n)]` lists indices of tiles having that
    /// chord (as a ring-consecutive pair, i.e. actually covering it).
    by_chord: Vec<Vec<u32>>,
    /// Tile → index (tiles are unique within a universe).
    index_of: HashMap<Tile, u32>,

    // ---- chord tables (priority space) ----
    /// dense index → priority index.
    pri_of_dense: Vec<u32>,
    /// priority index → dense index.
    dense_of_pri: Vec<u32>,
    /// priority index → ring distance of the chord.
    dist_of_pri: Vec<u32>,
    /// priority index → the chord's two ring vertices `(u, v)` with
    /// `u < v` — the endpoints whose uncovered degrees a placement
    /// changes (the iterative core's incremental parity bookkeeping).
    ends_of_pri: Vec<(u32, u32)>,
    /// Priority indices `< diam_chords` are exactly the diameter-class
    /// chords (0 for odd `n`).
    diam_chords: u32,
    /// Longest per-chord candidate list — the one-shot sizing bound for
    /// per-node candidate arenas (no search node can see more).
    max_candidates: u32,

    // ---- tile tables ----
    /// CSR offsets into `chord_idx`: tile `i` owns
    /// `chord_idx[chord_off[i]..chord_off[i+1]]`.
    chord_off: Vec<u32>,
    /// Concatenated per-tile chord lists (priority indices).
    chord_idx: Vec<u32>,
    /// Per-tile chord bitmask (priority space).
    masks: Vec<ChordSet>,
    /// Per-tile `(lo, hi)` word span of the mask: every set bit of
    /// `masks[i]` lies in words `lo..hi`. Dominance subset tests and
    /// scratch clears touch only this span instead of the full width.
    mask_span: Vec<(u32, u32)>,
    /// Per-tile total shortest-path load `Σ dist(chord)`.
    load: Vec<u32>,
    /// Per-tile wasted ring capacity `n − min(load, n)`.
    waste: Vec<u32>,
    /// Per-tile number of diameter-class chords.
    diam_count: Vec<u32>,
    /// `vertex_masks[v]`: the chords incident to ring vertex `v`
    /// (priority space) — the support of the vertex-degree lower bound.
    vertex_masks: Vec<ChordSet>,

    /// Lazily-built dihedral action tables (`None` inside the cell when
    /// the group order `2n` exceeds the 64-bit subgroup masks).
    dihedral: OnceLock<Option<DihedralTables>>,
}

/// The action of the dihedral group `D_n = Aut(C_n)` on the universe,
/// precomputed as flat permutation tables so the exact search can do
/// symmetry reduction with plain array lookups and word operations.
///
/// Group elements are indexed `g ∈ 0..2n`: `g < n` is the rotation
/// `v ↦ v + g (mod n)`; `g = n + r` is the reflection-then-rotation
/// `v ↦ r − v (mod n)`. Element `0` is the identity. Subgroups are
/// represented as `u64` bitmasks over the element indices (hence the
/// `2n ≤ 64` limit — every ring this workspace searches exactly fits).
///
/// The tables are only valid for the universe they were built from: the
/// tile enumeration criteria (`max_len`, `max_gap`) are `D_n`-invariant,
/// so the universe is closed under the action and every image is again a
/// universe index.
pub struct DihedralTables {
    /// Group order `2n`.
    order: u32,
    /// Number of chord slots `m`.
    num_chords: u32,
    /// Number of tiles `T`.
    num_tiles: u32,
    /// `chord_perm[g · m + c]`: image of priority chord `c` under `g`.
    chord_perm: Vec<u32>,
    /// `tile_perm[g · T + t]`: image of tile `t` under `g`.
    tile_perm: Vec<u32>,
    /// `chord_stab[c]`: bitmask of elements fixing priority chord `c`.
    chord_stab: Vec<u64>,
    /// `tile_stab[t]`: bitmask of elements fixing tile `t`.
    tile_stab: Vec<u64>,
    /// `canon_tile[t]`: the smallest tile index in `t`'s orbit — the
    /// canonical image; `canon_tile[t] == t` marks orbit representatives.
    canon_tile: Vec<u32>,
}

impl DihedralTables {
    fn build(u: &TileUniverse) -> Option<DihedralTables> {
        let n = u.ring.n();
        let order = 2 * n;
        if order > 64 {
            return None;
        }
        let m = u.num_chords();
        let t_count = u.len() as u32;
        let mut chord_perm = vec![0u32; (order * m) as usize];
        let mut tile_perm = vec![0u32; order as usize * t_count as usize];
        let mut chord_stab = vec![0u64; m as usize];
        let mut tile_stab = vec![0u64; t_count as usize];
        let mut canon_tile: Vec<u32> = (0..t_count).collect();
        for g in 0..order {
            // Vertex action of element g (see the type docs).
            let map = |v: u32| -> u32 {
                if g < n {
                    u.ring.add(v, g)
                } else {
                    u.ring.sub(g - n, v)
                }
            };
            for c in 0..m {
                let e = Edge::from_dense_index(u.dense_of_pri(c) as usize, n as usize);
                let img = Edge::new(map(e.u()), map(e.v()));
                let img_pri = u.pri_of_dense(img.dense_index(n as usize) as u32);
                chord_perm[(g * m + c) as usize] = img_pri;
                if img_pri == c {
                    chord_stab[c as usize] |= 1 << g;
                }
            }
            for t in 0..t_count {
                let verts: Vec<u32> = u.tiles[t as usize]
                    .vertices()
                    .iter()
                    .map(|&v| map(v))
                    .collect();
                let img = u
                    .index_of(&Tile::from_vertices(u.ring, verts))
                    .expect("tile universe is closed under the dihedral action");
                tile_perm[g as usize * t_count as usize + t as usize] = img;
                if img == t {
                    tile_stab[t as usize] |= 1 << g;
                }
                if img < canon_tile[t as usize] {
                    canon_tile[t as usize] = img;
                }
            }
        }
        Some(DihedralTables {
            order,
            num_chords: m,
            num_tiles: t_count,
            chord_perm,
            tile_perm,
            chord_stab,
            tile_stab,
            canon_tile,
        })
    }

    /// Group order `2n`.
    #[inline]
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Number of tiles the tables act on.
    #[inline]
    pub fn num_tiles(&self) -> u32 {
        self.num_tiles
    }

    /// Image of priority chord `c` under element `g`.
    #[inline]
    pub fn chord_image(&self, g: u32, c: u32) -> u32 {
        self.chord_perm[(g * self.num_chords + c) as usize]
    }

    /// Image of tile `t` under element `g`.
    #[inline]
    pub fn tile_image(&self, g: u32, t: u32) -> u32 {
        self.tile_perm[g as usize * self.num_tiles as usize + t as usize]
    }

    /// Subgroup mask of the elements fixing priority chord `c`.
    #[inline]
    pub fn chord_stab(&self, c: u32) -> u64 {
        self.chord_stab[c as usize]
    }

    /// Subgroup mask of the elements fixing tile `t`.
    #[inline]
    pub fn tile_stab(&self, t: u32) -> u64 {
        self.tile_stab[t as usize]
    }

    /// The canonical (smallest-index) image of tile `t`'s orbit.
    #[inline]
    pub fn canonical_tile(&self, t: u32) -> u32 {
        self.canon_tile[t as usize]
    }

    /// Whether tile `t` is its orbit's representative.
    #[inline]
    pub fn is_orbit_rep(&self, t: u32) -> bool {
        self.canon_tile[t as usize] == t
    }

    /// Iterator over the orbit representatives (canonical tiles).
    pub fn orbit_reps(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.num_tiles).filter(move |&t| self.is_orbit_rep(t))
    }

    /// Stabilizer mask of the highest-priority diameter chord (priority
    /// index 0), or `None` when the ring has no diameter class. This is
    /// the subgroup the root branch of an even complete instance is
    /// reduced by: order 4 (identity, the `n/2` rotation, and the two
    /// reflections through the chord's axis and its perpendicular).
    pub fn diameter_chord_stab(&self, u: &TileUniverse) -> Option<u64> {
        (u.diam_chords() > 0).then(|| self.chord_stab(0))
    }

    /// Subgroup mask of the elements preserving a demand level function
    /// over priority chords — the symmetry group of a search's initial
    /// state. For complete and λ-fold specs this is all of `D_n`.
    pub fn demand_preserving(&self, demand_of_pri: impl Fn(u32) -> u32) -> u64 {
        let mut mask = 0u64;
        'g: for g in 0..self.order {
            for c in 0..self.num_chords {
                if demand_of_pri(self.chord_image(g, c)) != demand_of_pri(c) {
                    continue 'g;
                }
            }
            mask |= 1 << g;
        }
        mask
    }
}

impl TileUniverse {
    /// Enumerates all tiles with `3 ≤ |S| ≤ max_len` vertices.
    ///
    /// For minimum-covering searches `max_len = n` is exact; the paper's
    /// constructions only ever need `max_len = 4`.
    pub fn new(ring: Ring, max_len: usize) -> Self {
        Self::with_max_gap(ring, max_len, ring.n())
    }

    /// As [`TileUniverse::new`] but only tiles whose gaps are all ≤
    /// `max_gap`. With `max_gap = ⌊n/2⌋` every chord is routed on a
    /// shortest path (no "wasted" capacity) — the shape of all odd-`n`
    /// optimal coverings.
    pub fn with_max_gap(ring: Ring, max_len: usize, max_gap: u32) -> Self {
        assert!(max_len >= 3, "tiles need >= 3 vertices");
        let n = ring.n();
        let mut tiles = Vec::new();
        // DFS over increasing vertex choices; prune when the remaining gap
        // back to the start would force a gap > max_gap… (cheap check at
        // close time only, gaps between chosen vertices checked on the fly).
        let mut current: Vec<u32> = Vec::with_capacity(max_len);
        fn rec(
            ring: Ring,
            max_len: usize,
            max_gap: u32,
            next_min: u32,
            current: &mut Vec<u32>,
            tiles: &mut Vec<Tile>,
        ) {
            let n = ring.n();
            if current.len() >= 3 {
                // Closing gap from last vertex back to first.
                let close = ring.cw_gap(*current.last().unwrap(), current[0]);
                if close <= max_gap {
                    tiles.push(Tile::from_vertices(ring, current.clone()));
                }
            }
            if current.len() == max_len {
                return;
            }
            for v in next_min..n {
                // Gap from previous chosen vertex.
                if let Some(&prev) = current.last() {
                    if ring.cw_gap(prev, v) > max_gap {
                        // gaps only grow as v grows
                        break;
                    }
                }
                current.push(v);
                rec(ring, max_len, max_gap, v + 1, current, tiles);
                current.pop();
            }
        }
        // First vertex ranges over all positions (subsets are sorted, so the
        // first vertex is the minimum).
        for v0 in 0..n {
            current.push(v0);
            rec(ring, max_len, max_gap, v0 + 1, &mut current, &mut tiles);
            current.pop();
        }

        let m = n as usize * (n as usize - 1) / 2;

        // Priority permutation: stable sort of dense indices by decreasing
        // distance puts diameter-class chords (maximal distance) first and
        // keeps ties in dense order — the exact branch order the original
        // per-node scan used, now implicit in bit position.
        let mut dense_by_priority: Vec<u32> = (0..m as u32).collect();
        let dense_dist: Vec<u32> = (0..m)
            .map(|i| {
                let e = Edge::from_dense_index(i, n as usize);
                ring.distance(e.u(), e.v())
            })
            .collect();
        dense_by_priority.sort_by_key(|&i| std::cmp::Reverse(dense_dist[i as usize]));
        let dense_of_pri = dense_by_priority;
        let mut pri_of_dense = vec![0u32; m];
        for (pri, &dense) in dense_of_pri.iter().enumerate() {
            pri_of_dense[dense as usize] = pri as u32;
        }
        let dist_of_pri: Vec<u32> = dense_of_pri
            .iter()
            .map(|&d| dense_dist[d as usize])
            .collect();
        let ends_of_pri: Vec<(u32, u32)> = dense_of_pri
            .iter()
            .map(|&d| {
                let e = Edge::from_dense_index(d as usize, n as usize);
                (e.u(), e.v())
            })
            .collect();
        let diam_chords = dist_of_pri
            .iter()
            .take_while(|&&d| ring.is_diameter_class(d))
            .count() as u32;

        let mut vertex_masks = vec![ChordSet::empty(m as u32); n as usize];
        for (dense, &pri) in pri_of_dense.iter().enumerate() {
            let e = Edge::from_dense_index(dense, n as usize);
            vertex_masks[e.u() as usize].insert(pri);
            vertex_masks[e.v() as usize].insert(pri);
        }

        // Per-tile metadata + per-chord candidate lists, one pass.
        let mut by_chord = vec![Vec::new(); m];
        let mut index_of = HashMap::with_capacity(tiles.len());
        let mut chord_off = Vec::with_capacity(tiles.len() + 1);
        let mut chord_idx = Vec::new();
        let mut masks = Vec::with_capacity(tiles.len());
        let mut mask_span = Vec::with_capacity(tiles.len());
        let mut load = Vec::with_capacity(tiles.len());
        let mut waste = Vec::with_capacity(tiles.len());
        let mut diam_count = Vec::with_capacity(tiles.len());
        chord_off.push(0u32);
        for (i, t) in tiles.iter().enumerate() {
            index_of.insert(t.clone(), i as u32);
            let mut mask = ChordSet::empty(m as u32);
            let mut tile_load = 0u32;
            let mut tile_diam = 0u32;
            for (u, v) in t.chord_pairs() {
                let dense = Edge::new(u, v).dense_index(n as usize);
                let pri = pri_of_dense[dense];
                by_chord[dense].push(i as u32);
                chord_idx.push(pri);
                mask.insert(pri);
                tile_load += dist_of_pri[pri as usize];
                tile_diam += (pri < diam_chords) as u32;
            }
            chord_off.push(chord_idx.len() as u32);
            let lo = mask
                .words()
                .iter()
                .position(|&w| w != 0)
                .unwrap_or(0) as u32;
            let hi = mask
                .words()
                .iter()
                .rposition(|&w| w != 0)
                .map(|p| p as u32 + 1)
                .unwrap_or(0);
            mask_span.push((lo, hi));
            masks.push(mask);
            load.push(tile_load);
            waste.push(n - tile_load.min(n));
            diam_count.push(tile_diam);
        }
        let max_candidates = by_chord.iter().map(|c| c.len() as u32).max().unwrap_or(0);

        TileUniverse {
            ring,
            tiles,
            by_chord,
            index_of,
            pri_of_dense,
            dense_of_pri,
            dist_of_pri,
            ends_of_pri,
            diam_chords,
            max_candidates,
            chord_off,
            chord_idx,
            masks,
            mask_span,
            load,
            waste,
            diam_count,
            vertex_masks,
            dihedral: OnceLock::new(),
        }
    }

    /// The dihedral action tables, built on first use (`None` for rings
    /// with `2n > 64`, where the `u64` subgroup masks don't fit — far
    /// beyond any instance the exact search can finish anyway).
    pub fn dihedral(&self) -> Option<&DihedralTables> {
        self.dihedral
            .get_or_init(|| DihedralTables::build(self))
            .as_ref()
    }

    /// The ring.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Approximate heap footprint of this universe in bytes — the figure
    /// a byte-budgeted universe cache charges per entry. Counts the
    /// dominant owned allocations (tile vertex lists, CSR chord tables,
    /// bitmasks, per-chord candidate lists); deliberately excludes the
    /// lazily-built dihedral tables, which are a lower-order term.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let m = self.pri_of_dense.len();
        let words_per_mask = m.div_ceil(64);
        let mask_bytes = size_of::<ChordSet>() + words_per_mask * 8;
        let mut bytes = size_of::<Self>();
        bytes += self
            .tiles
            .iter()
            .map(|t| size_of::<Tile>() + t.len() * size_of::<u32>())
            .sum::<usize>();
        // index_of mirrors the tile list (key clone + u32 + bucket slack).
        bytes += self
            .tiles
            .iter()
            .map(|t| size_of::<Tile>() + t.len() * size_of::<u32>() + 2 * size_of::<usize>())
            .sum::<usize>();
        bytes += self
            .by_chord
            .iter()
            .map(|c| size_of::<Vec<u32>>() + c.len() * size_of::<u32>())
            .sum::<usize>();
        bytes += (self.pri_of_dense.len() + self.dense_of_pri.len() + self.dist_of_pri.len())
            * size_of::<u32>();
        bytes += self.ends_of_pri.len() * size_of::<(u32, u32)>();
        bytes += (self.chord_off.len() + self.chord_idx.len()) * size_of::<u32>();
        bytes += self.masks.len() * (mask_bytes + size_of::<(u32, u32)>());
        bytes += (self.load.len() + self.waste.len() + self.diam_count.len()) * size_of::<u32>();
        bytes += self.vertex_masks.len() * mask_bytes;
        bytes
    }

    /// All tiles.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Indices of tiles covering the given request.
    pub fn candidates(&self, e: Edge) -> &[u32] {
        &self.by_chord[e.dense_index(self.ring.n() as usize)]
    }

    /// Indices of tiles covering the chord with priority index `pri`.
    pub fn candidates_pri(&self, pri: u32) -> &[u32] {
        &self.by_chord[self.dense_of_pri[pri as usize] as usize]
    }

    /// The tile with index `i`.
    pub fn tile(&self, i: u32) -> &Tile {
        &self.tiles[i as usize]
    }

    /// The index of `tile` in this universe, if enumerated.
    pub fn index_of(&self, tile: &Tile) -> Option<u32> {
        self.index_of.get(tile).copied()
    }

    /// Number of chord slots (`n(n−1)/2`).
    pub fn num_chords(&self) -> u32 {
        self.pri_of_dense.len() as u32
    }

    /// Dense chord index → priority index.
    pub fn pri_of_dense(&self, dense: u32) -> u32 {
        self.pri_of_dense[dense as usize]
    }

    /// Priority index → dense chord index.
    pub fn dense_of_pri(&self, pri: u32) -> u32 {
        self.dense_of_pri[pri as usize]
    }

    /// Ring distance of the chord with priority index `pri`.
    pub fn dist_of_pri(&self, pri: u32) -> u32 {
        self.dist_of_pri[pri as usize]
    }

    /// The two ring vertices `(u, v)` (with `u < v`) of the chord with
    /// priority index `pri`.
    #[inline]
    pub fn chord_ends_of_pri(&self, pri: u32) -> (u32, u32) {
        self.ends_of_pri[pri as usize]
    }

    /// Length of the longest per-chord candidate list — an upper bound on
    /// how many candidates any single search node can score, and the
    /// one-shot sizing of per-node scratch arenas.
    #[inline]
    pub fn max_candidates(&self) -> u32 {
        self.max_candidates
    }

    /// Number of diameter-class chords; priority indices `< diam_chords()`
    /// are exactly those chords.
    pub fn diam_chords(&self) -> u32 {
        self.diam_chords
    }

    /// Tile `i`'s chords as priority indices (precomputed, no ring math).
    #[inline]
    pub fn tile_chords(&self, i: u32) -> &[u32] {
        let i = i as usize;
        &self.chord_idx[self.chord_off[i] as usize..self.chord_off[i + 1] as usize]
    }

    /// Tile `i`'s chord bitmask (priority space).
    #[inline]
    pub fn tile_mask(&self, i: u32) -> &ChordSet {
        &self.masks[i as usize]
    }

    /// The `(lo, hi)` word span of tile `i`'s mask: every set bit lies in
    /// words `lo..hi` of the priority chord space.
    #[inline]
    pub fn tile_mask_span(&self, i: u32) -> (u32, u32) {
        self.mask_span[i as usize]
    }

    /// Tile `i`'s total shortest-path load `Σ dist(chord)`.
    #[inline]
    pub fn tile_load(&self, i: u32) -> u32 {
        self.load[i as usize]
    }

    /// Tile `i`'s wasted ring capacity `n − min(load, n)`.
    #[inline]
    pub fn tile_waste(&self, i: u32) -> u32 {
        self.waste[i as usize]
    }

    /// Number of diameter-class chords of tile `i`.
    #[inline]
    pub fn tile_diam_count(&self, i: u32) -> u32 {
        self.diam_count[i as usize]
    }

    /// Chords incident to ring vertex `v`, as a priority-space mask.
    #[inline]
    pub fn vertex_mask(&self, v: u32) -> &ChordSet {
        &self.vertex_masks[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiles of size k on C_n are exactly the k-subsets: C(n,3) + C(n,4)
    /// for max_len = 4.
    #[test]
    fn tile_counts_are_binomials() {
        fn binom(n: u64, k: u64) -> u64 {
            let mut r = 1u64;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        for n in [5u32, 6, 8, 9] {
            let u = TileUniverse::new(Ring::new(n), 4);
            assert_eq!(u.len() as u64, binom(n as u64, 3) + binom(n as u64, 4), "n={n}");
            let full = TileUniverse::new(Ring::new(n), n as usize);
            let expect: u64 = (3..=n as u64).map(|k| binom(n as u64, k)).sum();
            assert_eq!(full.len() as u64, expect, "n={n} full");
        }
    }

    #[test]
    fn max_gap_filters_long_arcs() {
        let ring = Ring::new(9);
        let u = TileUniverse::with_max_gap(ring, 4, 4);
        assert!(u.tiles().iter().all(|t| t.max_gap(ring) <= 4));
        // {0, 1, 2} has closing gap 7 > 4: excluded.
        assert!(!u
            .tiles()
            .iter()
            .any(|t| t.vertices() == [0, 1, 2]));
        // {0, 3, 6} has gaps 3,3,3: included.
        assert!(u.tiles().iter().any(|t| t.vertices() == [0, 3, 6]));
    }

    #[test]
    fn candidates_actually_cover() {
        let ring = Ring::new(7);
        let u = TileUniverse::new(ring, 4);
        for uu in 0..7u32 {
            for vv in (uu + 1)..7u32 {
                let e = Edge::new(uu, vv);
                let cands = u.candidates(e);
                assert!(!cands.is_empty());
                for &i in cands {
                    let covers = u
                        .tile(i)
                        .chords(ring)
                        .iter()
                        .any(|c| c.to_edge() == e);
                    assert!(covers, "tile {:?} listed for {e} but does not cover it", u.tile(i));
                }
            }
        }
    }

    /// A chord {u,v} is covered by a tile iff u,v are ring-consecutive in
    /// it; count candidates for a fixed chord on a small ring by brute force.
    #[test]
    fn candidate_counts_match_bruteforce() {
        let ring = Ring::new(6);
        let u = TileUniverse::new(ring, 4);
        let e = Edge::new(0, 2);
        let brute = u
            .tiles()
            .iter()
            .filter(|t| t.chords(ring).iter().any(|c| c.to_edge() == e))
            .count();
        assert_eq!(u.candidates(e).len(), brute);
    }

    #[test]
    fn priority_permutation_is_consistent() {
        for n in [7u32, 8, 12] {
            let ring = Ring::new(n);
            let u = TileUniverse::new(ring, 4);
            let m = u.num_chords();
            assert_eq!(m as usize, n as usize * (n as usize - 1) / 2);
            // Round trip and monotone-decreasing distance in priority order.
            for pri in 0..m {
                assert_eq!(u.pri_of_dense(u.dense_of_pri(pri)), pri, "n={n}");
                if pri > 0 {
                    assert!(
                        u.dist_of_pri(pri - 1) >= u.dist_of_pri(pri),
                        "n={n}: priority order must not increase distance"
                    );
                }
                let e = Edge::from_dense_index(u.dense_of_pri(pri) as usize, n as usize);
                assert_eq!(u.dist_of_pri(pri), ring.distance(e.u(), e.v()), "n={n}");
            }
            // The diameter prefix is exactly the diameter class.
            let expect_diam = if n % 2 == 0 { n / 2 } else { 0 };
            assert_eq!(u.diam_chords(), expect_diam, "n={n}");
            for pri in 0..m {
                assert_eq!(
                    pri < u.diam_chords(),
                    ring.is_diameter_class(u.dist_of_pri(pri)),
                    "n={n} pri={pri}"
                );
            }
        }
    }

    #[test]
    fn dihedral_tables_are_group_actions() {
        for n in [6u32, 7, 8] {
            let ring = Ring::new(n);
            let u = TileUniverse::new(ring, n as usize);
            let d = u.dihedral().expect("2n <= 64");
            assert_eq!(d.order(), 2 * n);
            let m = u.num_chords();
            let t_count = u.len() as u32;
            // Element 0 is the identity.
            for c in 0..m {
                assert_eq!(d.chord_image(0, c), c);
            }
            for t in 0..t_count {
                assert_eq!(d.tile_image(0, t), t);
            }
            for g in 0..d.order() {
                // Permutations (bijective) and distance-preserving.
                let mut seen_c = vec![false; m as usize];
                for c in 0..m {
                    let img = d.chord_image(g, c);
                    assert!(!seen_c[img as usize], "n={n} g={g}: chord collision");
                    seen_c[img as usize] = true;
                    assert_eq!(u.dist_of_pri(img), u.dist_of_pri(c), "n={n} g={g}");
                }
                let mut seen_t = vec![false; t_count as usize];
                for t in 0..t_count {
                    let img = d.tile_image(g, t);
                    assert!(!seen_t[img as usize], "n={n} g={g}: tile collision");
                    seen_t[img as usize] = true;
                    // Tile metadata is invariant under the action.
                    assert_eq!(u.tile_load(img), u.tile_load(t), "n={n} g={g} t={t}");
                    assert_eq!(u.tile_waste(img), u.tile_waste(t), "n={n} g={g} t={t}");
                    assert_eq!(
                        u.tile_diam_count(img),
                        u.tile_diam_count(t),
                        "n={n} g={g} t={t}"
                    );
                    // The tile's chord mask maps chord-wise.
                    let mut mapped: Vec<u32> =
                        u.tile_chords(t).iter().map(|&c| d.chord_image(g, c)).collect();
                    mapped.sort_unstable();
                    let img_chords: Vec<u32> = u.tile_mask(img).iter().collect();
                    assert_eq!(mapped, img_chords, "n={n} g={g} t={t}");
                }
            }
            // Stabilizer masks: bit g set iff g fixes the object.
            for t in (0..t_count).step_by(7) {
                for g in 0..d.order() {
                    assert_eq!(
                        d.tile_stab(t) >> g & 1 == 1,
                        d.tile_image(g, t) == t,
                        "n={n} t={t} g={g}"
                    );
                }
            }
            // Orbits partition the universe; canonical images are orbit
            // minima and idempotent.
            let mut orbit_total = 0usize;
            for rep in d.orbit_reps() {
                assert_eq!(d.canonical_tile(rep), rep);
                let orbit: std::collections::BTreeSet<u32> =
                    (0..d.order()).map(|g| d.tile_image(g, rep)).collect();
                assert!(orbit.iter().all(|&t| d.canonical_tile(t) == rep), "n={n}");
                assert_eq!(*orbit.iter().next().unwrap(), rep, "rep is the minimum");
                assert_eq!(2 * n as usize % orbit.len(), 0, "orbit divides |D_n|");
                orbit_total += orbit.len();
            }
            assert_eq!(orbit_total, t_count as usize, "orbits partition, n={n}");
            // Complete demand is preserved by the whole group; the
            // diameter-chord stabilizer has order 4 exactly for even n.
            let full = d.demand_preserving(|_| 1);
            assert_eq!(full.count_ones(), 2 * n, "n={n}");
            match d.diameter_chord_stab(&u) {
                Some(stab) => {
                    assert!(n.is_multiple_of(2));
                    assert_eq!(stab.count_ones(), 4, "n={n}");
                }
                None => assert!(!n.is_multiple_of(2)),
            }
        }
    }

    /// An asymmetric demand function shrinks the preserved subgroup: a
    /// single demanded chord is preserved exactly by its stabilizer.
    #[test]
    fn demand_preserving_respects_asymmetry() {
        let u = TileUniverse::new(Ring::new(8), 4);
        let d = u.dihedral().unwrap();
        for c in [0u32, 5, 17] {
            let mask = d.demand_preserving(|pri| (pri == c) as u32);
            assert_eq!(mask, d.chord_stab(c), "chord {c}");
        }
    }

    #[test]
    fn tile_metadata_matches_recomputation() {
        for n in [6u32, 9, 12] {
            let ring = Ring::new(n);
            let u = TileUniverse::new(ring, 5);
            for i in 0..u.len() as u32 {
                let t = u.tile(i);
                // Chord list ↔ mask ↔ tile.chords agreement.
                let mut expect: Vec<u32> = t
                    .chords(ring)
                    .iter()
                    .map(|c| u.pri_of_dense(c.to_edge().dense_index(n as usize) as u32))
                    .collect();
                let mut got = u.tile_chords(i).to_vec();
                assert_eq!(got.len(), t.len(), "n={n} tile {i}");
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, expect, "n={n} tile {i}");
                assert_eq!(
                    u.tile_mask(i).iter().collect::<Vec<_>>(),
                    expect,
                    "n={n} tile {i} mask"
                );
                // Load / waste / diameter count.
                assert_eq!(u.tile_load(i), t.shortest_load(ring), "n={n} tile {i}");
                assert_eq!(
                    u.tile_waste(i),
                    n - t.shortest_load(ring).min(n),
                    "n={n} tile {i}"
                );
                let diam = t
                    .chords(ring)
                    .iter()
                    .filter(|c| ring.is_diameter_class(c.distance(ring)))
                    .count() as u32;
                assert_eq!(u.tile_diam_count(i), diam, "n={n} tile {i}");
                // Index lookup round-trips.
                assert_eq!(u.index_of(t), Some(i), "n={n} tile {i}");
            }
        }
    }
}
