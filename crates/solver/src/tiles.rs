//! Enumeration of winding tiles (= DRC-routable cycles) of a ring.

use cyclecover_graph::Edge;
use cyclecover_ring::{Ring, Tile};

/// The universe of candidate covering cycles for exact search on `C_n`:
/// all winding tiles with size in `3..=max_len`, optionally restricted by a
/// maximum gap (arc length).
///
/// By the winding lemma every DRC-routable cycle *is* a tile (a vertex
/// subset in ring order), so enumerating subsets enumerates all admissible
/// covering cycles — there is no loss of generality for the exact solvers.
pub struct TileUniverse {
    ring: Ring,
    tiles: Vec<Tile>,
    /// `by_chord[edge.dense_index(n)]` lists indices of tiles having that
    /// chord (as a ring-consecutive pair, i.e. actually covering it).
    by_chord: Vec<Vec<u32>>,
}

impl TileUniverse {
    /// Enumerates all tiles with `3 ≤ |S| ≤ max_len` vertices.
    ///
    /// For minimum-covering searches `max_len = n` is exact; the paper's
    /// constructions only ever need `max_len = 4`.
    pub fn new(ring: Ring, max_len: usize) -> Self {
        Self::with_max_gap(ring, max_len, ring.n())
    }

    /// As [`TileUniverse::new`] but only tiles whose gaps are all ≤
    /// `max_gap`. With `max_gap = ⌊n/2⌋` every chord is routed on a
    /// shortest path (no "wasted" capacity) — the shape of all odd-`n`
    /// optimal coverings.
    pub fn with_max_gap(ring: Ring, max_len: usize, max_gap: u32) -> Self {
        assert!(max_len >= 3, "tiles need >= 3 vertices");
        let n = ring.n();
        let mut tiles = Vec::new();
        // DFS over increasing vertex choices; prune when the remaining gap
        // back to the start would force a gap > max_gap… (cheap check at
        // close time only, gaps between chosen vertices checked on the fly).
        let mut current: Vec<u32> = Vec::with_capacity(max_len);
        fn rec(
            ring: Ring,
            max_len: usize,
            max_gap: u32,
            next_min: u32,
            current: &mut Vec<u32>,
            tiles: &mut Vec<Tile>,
        ) {
            let n = ring.n();
            if current.len() >= 3 {
                // Closing gap from last vertex back to first.
                let close = ring.cw_gap(*current.last().unwrap(), current[0]);
                if close <= max_gap {
                    tiles.push(Tile::from_vertices(ring, current.clone()));
                }
            }
            if current.len() == max_len {
                return;
            }
            for v in next_min..n {
                // Gap from previous chosen vertex.
                if let Some(&prev) = current.last() {
                    if ring.cw_gap(prev, v) > max_gap {
                        // gaps only grow as v grows
                        break;
                    }
                }
                current.push(v);
                rec(ring, max_len, max_gap, v + 1, current, tiles);
                current.pop();
            }
        }
        // First vertex ranges over all positions (subsets are sorted, so the
        // first vertex is the minimum).
        for v0 in 0..n {
            current.push(v0);
            rec(ring, max_len, max_gap, v0 + 1, &mut current, &mut tiles);
            current.pop();
        }

        let mut by_chord = vec![Vec::new(); n as usize * (n as usize - 1) / 2];
        for (i, t) in tiles.iter().enumerate() {
            for c in t.chords(ring) {
                by_chord[c.to_edge().dense_index(n as usize)].push(i as u32);
            }
        }
        TileUniverse {
            ring,
            tiles,
            by_chord,
        }
    }

    /// The ring.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// All tiles.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Indices of tiles covering the given request.
    pub fn candidates(&self, e: Edge) -> &[u32] {
        &self.by_chord[e.dense_index(self.ring.n() as usize)]
    }

    /// The tile with index `i`.
    pub fn tile(&self, i: u32) -> &Tile {
        &self.tiles[i as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiles of size k on C_n are exactly the k-subsets: C(n,3) + C(n,4)
    /// for max_len = 4.
    #[test]
    fn tile_counts_are_binomials() {
        fn binom(n: u64, k: u64) -> u64 {
            let mut r = 1u64;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        for n in [5u32, 6, 8, 9] {
            let u = TileUniverse::new(Ring::new(n), 4);
            assert_eq!(u.len() as u64, binom(n as u64, 3) + binom(n as u64, 4), "n={n}");
            let full = TileUniverse::new(Ring::new(n), n as usize);
            let expect: u64 = (3..=n as u64).map(|k| binom(n as u64, k)).sum();
            assert_eq!(full.len() as u64, expect, "n={n} full");
        }
    }

    #[test]
    fn max_gap_filters_long_arcs() {
        let ring = Ring::new(9);
        let u = TileUniverse::with_max_gap(ring, 4, 4);
        assert!(u.tiles().iter().all(|t| t.max_gap(ring) <= 4));
        // {0, 1, 2} has closing gap 7 > 4: excluded.
        assert!(!u
            .tiles()
            .iter()
            .any(|t| t.vertices() == [0, 1, 2]));
        // {0, 3, 6} has gaps 3,3,3: included.
        assert!(u.tiles().iter().any(|t| t.vertices() == [0, 3, 6]));
    }

    #[test]
    fn candidates_actually_cover() {
        let ring = Ring::new(7);
        let u = TileUniverse::new(ring, 4);
        for uu in 0..7u32 {
            for vv in (uu + 1)..7u32 {
                let e = Edge::new(uu, vv);
                let cands = u.candidates(e);
                assert!(!cands.is_empty());
                for &i in cands {
                    let covers = u
                        .tile(i)
                        .chords(ring)
                        .iter()
                        .any(|c| c.to_edge() == e);
                    assert!(covers, "tile {:?} listed for {e} but does not cover it", u.tile(i));
                }
            }
        }
    }

    /// A chord {u,v} is covered by a tile iff u,v are ring-consecutive in
    /// it; count candidates for a fixed chord on a small ring by brute force.
    #[test]
    fn candidate_counts_match_bruteforce() {
        let ring = Ring::new(6);
        let u = TileUniverse::new(ring, 4);
        let e = Edge::new(0, 2);
        let brute = u
            .tiles()
            .iter()
            .filter(|t| t.chords(ring).iter().any(|c| c.to_edge() == e))
            .count();
        assert_eq!(u.candidates(e).len(), brute);
    }
}
