//! Lower bounds on the size of a DRC covering of `K_n` over `C_n`.

use cyclecover_graph::Edge;
use cyclecover_ring::Ring;

/// Capacity bound for an arbitrary demand vector (indexed by
/// [`Edge::dense_index`]): total demand weighted by ring distance, divided
/// (ceiling) by the per-cycle capacity `n`. This is the single home of the
/// sum-of-distances logic — [`capacity_lower_bound`] and
/// [`crate::bnb::CoverSpec::capacity_lower_bound`] both reduce to it.
pub fn weighted_demand_bound(ring: Ring, demand: &[u32]) -> u64 {
    let n = ring.n();
    debug_assert_eq!(
        demand.len(),
        n as usize * (n as usize - 1) / 2,
        "demand vector sized for K_n"
    );
    let total: u64 = demand
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let e = Edge::from_dense_index(i, n as usize);
            d as u64 * ring.distance(e.u(), e.v()) as u64
        })
        .sum();
    total.div_ceil(n as u64)
}

/// The capacity lower bound:
/// every DRC cycle occupies at most `n` ring edges (its arcs are pairwise
/// edge-disjoint) and a request at distance `d` occupies at least `d`, so
///
/// `ρ(n) ≥ ⌈ (Σ_{u<v} dist(u, v)) / n ⌉`.
///
/// For `n = 2p+1` this evaluates to `p(p+1)/2` (Theorem 1 is tight); for
/// `n = 2p` it evaluates to `⌈p²/2⌉`, one below Theorem 2 when `p` is even.
pub fn capacity_lower_bound(n: u32) -> u64 {
    // `total_pair_distance` is the closed form of the all-ones
    // `weighted_demand_bound` numerator (asserted in the tests below).
    let ring = Ring::new(n);
    ring.total_pair_distance().div_ceil(n as u64)
}

/// The diameter lower bound for even `n = 2p`: `K_n` has `p` diameter
/// requests and no DRC cycle can carry two of them (two diameters already
/// need `2p = n` edges, leaving nothing for the other ≥ 1 chords of the
/// cycle), so at least `p` cycles are needed. Weaker than capacity for all
/// `n ≥ 6`, but prunes branch & bound well. Returns 0 for odd `n`.
pub fn diameter_lower_bound(n: u32) -> u64 {
    if n.is_multiple_of(2) {
        (n / 2) as u64
    } else {
        0
    }
}

/// The best known combinatorial lower bound implemented here: the max of
/// capacity and diameter bounds.
///
/// The paper's Theorem 2 additionally proves `+1` over the capacity bound
/// for `n = 2p` with `p` even; that refinement is *certified* exhaustively
/// by [`crate::bnb::prove_infeasible`] on small instances (see
/// `EXPERIMENTS.md` E4) rather than assumed here.
pub fn combinatorial_lower_bound(n: u32) -> u64 {
    capacity_lower_bound(n).max(diameter_lower_bound(n))
}

/// The paper's claimed optimal value `ρ(n)`:
/// * Theorem 1 (odd `n = 2p+1`): `p(p+1)/2`;
/// * Theorem 2 (even `n = 2p`, `p ≥ 3`): `⌈(p²+1)/2⌉`;
/// * small cases: `ρ(3) = 1`, `ρ(4) = 3` (the paper's worked example),
///   `ρ(5) = 3` (Theorem 1 with `p = 2`).
pub fn rho_formula(n: u32) -> u64 {
    assert!(n >= 3, "rho(n) defined for n >= 3, got {n}");
    if n % 2 == 1 {
        let p = ((n - 1) / 2) as u64;
        p * (p + 1) / 2
    } else if n == 4 {
        3
    } else {
        let p = (n / 2) as u64;
        (p * p + 1).div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bound_odd_matches_theorem1() {
        for p in 1u64..=60 {
            let n = (2 * p + 1) as u32;
            assert_eq!(capacity_lower_bound(n), p * (p + 1) / 2, "n={n}");
            assert_eq!(rho_formula(n), p * (p + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn capacity_bound_even_is_ceil_half_p_squared() {
        for p in 2u64..=60 {
            let n = (2 * p) as u32;
            assert_eq!(capacity_lower_bound(n), (p * p).div_ceil(2), "n={n}");
        }
    }

    #[test]
    fn theorem2_exceeds_capacity_bound_only_for_even_p() {
        for p in 3u64..=60 {
            let n = (2 * p) as u32;
            let gap = rho_formula(n) as i64 - capacity_lower_bound(n) as i64;
            if p % 2 == 0 {
                assert_eq!(gap, 1, "even p={p}: rho = capacity + 1");
            } else {
                assert_eq!(gap, 0, "odd p={p}: capacity tight");
            }
        }
    }

    #[test]
    fn theorem2_composition_counts_are_consistent() {
        // n = 4q: 4 C3 + (2q²−3) C4; n = 4q+2: 2 C3 + (2q²+2q−1) C4.
        // Cycle counts must equal rho and edge slots must be >= |E(K_n)|.
        for q in 2u64..=40 {
            let n = 4 * q;
            let (c3, c4) = (4u64, 2 * q * q - 3);
            assert_eq!(c3 + c4, rho_formula(n as u32));
            let slots = 3 * c3 + 4 * c4;
            let edges = n * (n - 1) / 2;
            assert_eq!(slots - edges, n / 2, "overlap is exactly p for n={n}");
        }
        for q in 1u64..=40 {
            let n = 4 * q + 2;
            let (c3, c4) = (2u64, 2 * q * q + 2 * q - 1);
            assert_eq!(c3 + c4, rho_formula(n as u32));
            let slots = 3 * c3 + 4 * c4;
            let edges = n * (n - 1) / 2;
            assert_eq!(slots - edges, n / 2, "overlap is exactly p for n={n}");
        }
    }

    #[test]
    fn small_cases() {
        assert_eq!(rho_formula(3), 1);
        assert_eq!(rho_formula(4), 3);
        assert_eq!(rho_formula(5), 3);
        assert_eq!(rho_formula(6), 5);
        assert_eq!(rho_formula(7), 6);
        assert_eq!(rho_formula(8), 9);
        assert_eq!(rho_formula(9), 10);
        assert_eq!(rho_formula(10), 13);
        assert_eq!(rho_formula(12), 19);
    }

    #[test]
    fn weighted_bound_all_ones_matches_closed_form() {
        for n in 3u32..=30 {
            let ring = Ring::new(n);
            let m = n as usize * (n as usize - 1) / 2;
            assert_eq!(
                weighted_demand_bound(ring, &vec![1; m]),
                capacity_lower_bound(n),
                "n={n}"
            );
            // λ-fold demand scales the numerator, not the bound structure.
            let lam = weighted_demand_bound(ring, &vec![3; m]);
            assert_eq!(lam, (3 * ring.total_pair_distance()).div_ceil(n as u64));
        }
    }

    #[test]
    fn diameter_bound() {
        assert_eq!(diameter_lower_bound(8), 4);
        assert_eq!(diameter_lower_bound(9), 0);
        assert!(combinatorial_lower_bound(8) >= 4);
    }
}
