//! Lower bounds on the size of a DRC covering of `K_n` over `C_n`.

use crate::bitset::ChordSet;
use crate::TileUniverse;
use cyclecover_graph::Edge;
use cyclecover_ring::Ring;

/// Capacity bound for an arbitrary demand vector (indexed by
/// [`Edge::dense_index`]): total demand weighted by ring distance, divided
/// (ceiling) by the per-cycle capacity `n`. This is the single home of the
/// sum-of-distances logic — [`capacity_lower_bound`] and
/// [`crate::bnb::CoverSpec::capacity_lower_bound`] both reduce to it.
pub fn weighted_demand_bound(ring: Ring, demand: &[u32]) -> u64 {
    let n = ring.n();
    debug_assert_eq!(
        demand.len(),
        n as usize * (n as usize - 1) / 2,
        "demand vector sized for K_n"
    );
    let total: u64 = demand
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let e = Edge::from_dense_index(i, n as usize);
            d as u64 * ring.distance(e.u(), e.v()) as u64
        })
        .sum();
    total.div_ceil(n as u64)
}

/// The capacity lower bound:
/// every DRC cycle occupies at most `n` ring edges (its arcs are pairwise
/// edge-disjoint) and a request at distance `d` occupies at least `d`, so
///
/// `ρ(n) ≥ ⌈ (Σ_{u<v} dist(u, v)) / n ⌉`.
///
/// For `n = 2p+1` this evaluates to `p(p+1)/2` (Theorem 1 is tight); for
/// `n = 2p` it evaluates to `⌈p²/2⌉`, one below Theorem 2 when `p` is even.
pub fn capacity_lower_bound(n: u32) -> u64 {
    // `total_pair_distance` is the closed form of the all-ones
    // `weighted_demand_bound` numerator (asserted in the tests below).
    let ring = Ring::new(n);
    ring.total_pair_distance().div_ceil(n as u64)
}

/// The diameter lower bound for even `n = 2p`: `K_n` has `p` diameter
/// requests and no DRC cycle can carry two of them (two diameters already
/// need `2p = n` edges, leaving nothing for the other ≥ 1 chords of the
/// cycle), so at least `p` cycles are needed. Weaker than capacity for all
/// `n ≥ 6`, but prunes branch & bound well. Returns 0 for odd `n`.
pub fn diameter_lower_bound(n: u32) -> u64 {
    if n.is_multiple_of(2) {
        (n / 2) as u64
    } else {
        0
    }
}

/// The best known *closed-form* combinatorial lower bound implemented
/// here: the max of capacity and diameter bounds. This is the iterative
/// deepening start, so it deliberately excludes Theorem 2's `+1`.
///
/// The paper's Theorem 2 additionally proves `+1` over the capacity bound
/// for `n = 2p` with `p` even; that refinement is *certified* per
/// instance rather than assumed: the search's [`parity_join_bound`]
/// derives it at the root of the capacity-tight probe (a one-node
/// refutation under `SymmetryMode::Root`/`Full`), and
/// [`SymmetryMode::Off`](crate::bnb::SymmetryMode) still proves it by
/// plain exhaustion (see `EXPERIMENTS.md` E4).
pub fn combinatorial_lower_bound(n: u32) -> u64 {
    capacity_lower_bound(n).max(diameter_lower_bound(n))
}

/// The parity (T-join) bound over per-vertex residual degrees.
///
/// Every tile covers an *even* number of chords at every vertex — exactly
/// 2 at each vertex it visits (its two ring-consecutive neighbours), 0
/// elsewhere. So across any covering, the per-vertex coverage count is
/// even, and a vertex `v` whose uncovered degree `deg_U(v)` is odd forces
/// at least one *excess* coverage (a chord at `v` covered twice, or an
/// already-covered chord re-covered). The excess multiset has odd degree
/// exactly at the odd-degree vertex set `T`, hence contains a `T`-join,
/// whose ring-distance cost is at least `|T|/2` (each joining chord has
/// distance ≥ 1 and repairs two vertices). Charging that forced excess
/// into the capacity bound:
///
/// `tiles needed ≥ ⌈(rem_dist + |T|/2) / n⌉`.
///
/// This is the paper's Theorem 2 parity argument as a prefix bound. At
/// capacity-tight even instances it refutes at the root: for `n = 2p`
/// with `p` even, the budget `p²/2` has zero slack while every vertex has
/// odd degree `n − 1`, so `|T| = n` and the bound reads `p²/2 + 1/2`
/// rounded up — the `+1` of Theorem 2, turning the `n = 8` and `n = 12`
/// exhaustive refutations into one-node proofs. Deeper in a witness
/// search it keeps pruning: any prefix that strands odd residual degrees
/// with too little slack dies immediately.
pub fn parity_join_bound(u: &TileUniverse, uncovered: &ChordSet, rem_dist: u64) -> u64 {
    let n = u.ring().n();
    let mut odd = 0u64;
    for v in 0..n {
        let deg = u.vertex_mask(v).intersection_count(uncovered);
        odd += (deg & 1) as u64;
    }
    parity_join_bound_from_odd(n, rem_dist, odd)
}

/// [`parity_join_bound`] when the caller already knows `|T|` — the count
/// of vertices with odd uncovered degree. The iterative search core
/// maintains that count incrementally on place/unplace (each newly
/// covered chord flips the parity of its two endpoints), turning the
/// parity bound into a constant-time check per node instead of a
/// per-vertex mask scan.
#[inline]
pub fn parity_join_bound_from_odd(n: u32, rem_dist: u64, odd: u64) -> u64 {
    debug_assert!(odd.is_multiple_of(2), "handshake: odd-degree count is even");
    (rem_dist + odd / 2).div_ceil(n as u64)
}

/// The diameter-slack bound: a greedy dual ascent over the fractional
/// covering LP, no LP solver needed.
///
/// Start from the capacity dual `y_c = dist(c)/n` (feasible: a tile's
/// chords carry total shortest-path load ≤ `n`). Every uncovered diameter
/// chord `d` then gets its dual raised by the *minimum effective slack*
/// of the tiles covering it,
///
/// `δ_d = min_t (n − useful_load(t)) / n` over tiles `t ∋ d`,
///
/// where `useful_load(t)` counts only `t`'s still-uncovered chords. The
/// raises are jointly feasible because no tile carries two diameter
/// chords (each one needs its endpoints ring-consecutive in the tile, and
/// two such pairs interleave), so each tile absorbs at most one `δ_d` —
/// and by construction `δ_d` never exceeds that tile's slack. Weak LP
/// duality then gives, over the uncovered demand `U` with total distance
/// `rem_dist`,
///
/// `tiles needed ≥ ⌈(rem_dist + Σ_d minwaste(d)) / n⌉`.
///
/// At a fresh instance every diameter has a full-load disjoint tile and
/// the bound degenerates to capacity; *inside* the search tree it bites
/// hard: once the placed prefix overlaps every remaining way to cover
/// some diameter, that forced waste is charged immediately instead of
/// being discovered branches later. On capacity-tight refutations (the
/// `n = 12` budget-18 proof, where slack is zero) a single unit of
/// forced waste prunes the node.
///
/// `uncovered` is in the universe's priority chord space; `rem_dist`
/// must be the total ring distance of the uncovered chords. The scan
/// returns early once the bound exceeds `stop_above` (the caller's
/// remaining budget), and returns `u64::MAX / 2` if some uncovered
/// diameter has no covering tile at all.
pub fn diameter_slack_bound(
    u: &TileUniverse,
    uncovered: &ChordSet,
    rem_dist: u64,
    stop_above: u64,
) -> u64 {
    let n = u.ring().n() as u64;
    let diam = u.diam_chords();
    let mut extra = 0u64;
    let mut bound = rem_dist.div_ceil(n);
    for d in uncovered.iter().take_while(|&d| d < diam) {
        let mut minwaste = u64::MAX;
        for &t in u.candidates_pri(d) {
            let mut useful = 0u64;
            for (wi, (a, b)) in u
                .tile_mask(t)
                .words()
                .iter()
                .zip(uncovered.words())
                .enumerate()
            {
                let mut w = a & b;
                while w != 0 {
                    let c = (wi as u32) * 64 + w.trailing_zeros();
                    useful += u.dist_of_pri(c) as u64;
                    w &= w - 1;
                }
            }
            let waste = n.saturating_sub(useful);
            if waste < minwaste {
                minwaste = waste;
                if minwaste == 0 {
                    break;
                }
            }
        }
        if minwaste == u64::MAX {
            return u64::MAX / 2;
        }
        extra += minwaste;
        bound = (rem_dist + extra).div_ceil(n);
        if bound > stop_above {
            return bound;
        }
    }
    bound
}

/// The paper's claimed optimal value `ρ(n)`:
/// * Theorem 1 (odd `n = 2p+1`): `p(p+1)/2`;
/// * Theorem 2 (even `n = 2p`, `p ≥ 3`): `⌈(p²+1)/2⌉`;
/// * small cases: `ρ(3) = 1`, `ρ(4) = 3` (the paper's worked example),
///   `ρ(5) = 3` (Theorem 1 with `p = 2`).
pub fn rho_formula(n: u32) -> u64 {
    assert!(n >= 3, "rho(n) defined for n >= 3, got {n}");
    if n % 2 == 1 {
        let p = ((n - 1) / 2) as u64;
        p * (p + 1) / 2
    } else if n == 4 {
        3
    } else {
        let p = (n / 2) as u64;
        (p * p + 1).div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bound_odd_matches_theorem1() {
        for p in 1u64..=60 {
            let n = (2 * p + 1) as u32;
            assert_eq!(capacity_lower_bound(n), p * (p + 1) / 2, "n={n}");
            assert_eq!(rho_formula(n), p * (p + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn capacity_bound_even_is_ceil_half_p_squared() {
        for p in 2u64..=60 {
            let n = (2 * p) as u32;
            assert_eq!(capacity_lower_bound(n), (p * p).div_ceil(2), "n={n}");
        }
    }

    #[test]
    fn theorem2_exceeds_capacity_bound_only_for_even_p() {
        for p in 3u64..=60 {
            let n = (2 * p) as u32;
            let gap = rho_formula(n) as i64 - capacity_lower_bound(n) as i64;
            if p % 2 == 0 {
                assert_eq!(gap, 1, "even p={p}: rho = capacity + 1");
            } else {
                assert_eq!(gap, 0, "odd p={p}: capacity tight");
            }
        }
    }

    #[test]
    fn theorem2_composition_counts_are_consistent() {
        // n = 4q: 4 C3 + (2q²−3) C4; n = 4q+2: 2 C3 + (2q²+2q−1) C4.
        // Cycle counts must equal rho and edge slots must be >= |E(K_n)|.
        for q in 2u64..=40 {
            let n = 4 * q;
            let (c3, c4) = (4u64, 2 * q * q - 3);
            assert_eq!(c3 + c4, rho_formula(n as u32));
            let slots = 3 * c3 + 4 * c4;
            let edges = n * (n - 1) / 2;
            assert_eq!(slots - edges, n / 2, "overlap is exactly p for n={n}");
        }
        for q in 1u64..=40 {
            let n = 4 * q + 2;
            let (c3, c4) = (2u64, 2 * q * q + 2 * q - 1);
            assert_eq!(c3 + c4, rho_formula(n as u32));
            let slots = 3 * c3 + 4 * c4;
            let edges = n * (n - 1) / 2;
            assert_eq!(slots - edges, n / 2, "overlap is exactly p for n={n}");
        }
    }

    #[test]
    fn small_cases() {
        assert_eq!(rho_formula(3), 1);
        assert_eq!(rho_formula(4), 3);
        assert_eq!(rho_formula(5), 3);
        assert_eq!(rho_formula(6), 5);
        assert_eq!(rho_formula(7), 6);
        assert_eq!(rho_formula(8), 9);
        assert_eq!(rho_formula(9), 10);
        assert_eq!(rho_formula(10), 13);
        assert_eq!(rho_formula(12), 19);
    }

    #[test]
    fn weighted_bound_all_ones_matches_closed_form() {
        for n in 3u32..=30 {
            let ring = Ring::new(n);
            let m = n as usize * (n as usize - 1) / 2;
            assert_eq!(
                weighted_demand_bound(ring, &vec![1; m]),
                capacity_lower_bound(n),
                "n={n}"
            );
            // λ-fold demand scales the numerator, not the bound structure.
            let lam = weighted_demand_bound(ring, &vec![3; m]);
            assert_eq!(lam, (3 * ring.total_pair_distance()).div_ceil(n as u64));
        }
    }

    #[test]
    fn diameter_bound() {
        assert_eq!(diameter_lower_bound(8), 4);
        assert_eq!(diameter_lower_bound(9), 0);
        assert!(combinatorial_lower_bound(8) >= 4);
    }

    #[test]
    fn diameter_slack_bound_degenerates_to_capacity_when_fresh() {
        // On the untouched complete instance every diameter chord has a
        // full-load tile covering it, so no dual raise happens.
        for n in [8u32, 10, 12] {
            let ring = Ring::new(n);
            let u = TileUniverse::new(ring, n as usize);
            let uncovered = ChordSet::full(u.num_chords());
            let rem = ring.total_pair_distance();
            assert_eq!(
                diameter_slack_bound(&u, &uncovered, rem, u64::MAX),
                capacity_lower_bound(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn diameter_slack_bound_charges_forced_waste() {
        // Leave only the diameter chords uncovered: every tile covering
        // one now wastes n − n/2 capacity, and the dual ascent recovers
        // the full diameter bound where raw capacity sees ⌈p²/(2p)⌉.
        let n = 8u32;
        let u = TileUniverse::new(Ring::new(n), n as usize);
        let mut uncovered = ChordSet::empty(u.num_chords());
        for d in 0..u.diam_chords() {
            uncovered.insert(d);
        }
        let rem = (u.diam_chords() * (n / 2)) as u64;
        assert_eq!(rem.div_ceil(n as u64), 2, "raw capacity sees only 2");
        assert_eq!(
            diameter_slack_bound(&u, &uncovered, rem, u64::MAX),
            u.diam_chords() as u64,
            "dual ascent recovers one tile per leftover diameter"
        );
    }

    #[test]
    fn diameter_slack_bound_honors_stop_above() {
        let n = 8u32;
        let u = TileUniverse::new(Ring::new(n), n as usize);
        let mut uncovered = ChordSet::empty(u.num_chords());
        for d in 0..u.diam_chords() {
            uncovered.insert(d);
        }
        let rem = (u.diam_chords() * (n / 2)) as u64;
        // Early exit still reports a value strictly above the cap.
        assert!(diameter_slack_bound(&u, &uncovered, rem, 2) > 2);
    }
}
