//! Greedy set-cover baseline for DRC coverings.
//!
//! The classic `ln m`-approximation applied to our tile universe: repeatedly
//! pick the tile covering the most still-uncovered requests (ties broken by
//! less wasted ring capacity, then smaller index for determinism). Used by
//! experiment E5 as the "what a straightforward engineer would ship"
//! baseline against the paper's optimal constructions.

use crate::TileUniverse;
use cyclecover_graph::Edge;
use cyclecover_ring::Tile;

/// Greedily covers all requests of `K_n`; returns the chosen tiles.
///
/// Always succeeds (every chord is itself in some triangle tile).
pub fn greedy_cover(u: &TileUniverse) -> Vec<Tile> {
    // Runs on the universe's precomputed metadata: per-tile chord bitmasks
    // scored with an intersection popcount against the uncovered set.
    let mut uncovered = crate::bitset::ChordSet::full(u.num_chords());
    let mut chosen = Vec::new();

    while !uncovered.is_empty() {
        let mut best: Option<(u32, u32, u32)> = None; // (idx, cov, waste)
        for i in 0..u.len() as u32 {
            let cov = u.tile_mask(i).intersection_count(&uncovered);
            if cov == 0 {
                continue;
            }
            let waste = u.tile_waste(i);
            let better = match best {
                None => true,
                Some((_, bcov, bwaste)) => cov > bcov || (cov == bcov && waste < bwaste),
            };
            if better {
                best = Some((i, cov, waste));
            }
        }
        let (i, _, _) = best.expect("uncovered chords remain but no tile covers any");
        uncovered.subtract(u.tile_mask(i));
        chosen.push(u.tile(i).clone());
    }
    chosen
}

/// Number of requests of `K_n` left uncovered by `tiles` (0 for a valid
/// covering) — a convenience audit used in tests and benches.
pub fn uncovered_count(u: &TileUniverse, tiles: &[Tile]) -> usize {
    let ring = u.ring();
    let n = ring.n() as usize;
    let mut covered = vec![false; n * (n - 1) / 2];
    for t in tiles {
        for c in t.chords(ring) {
            covered[c.to_edge().dense_index(n)] = true;
        }
    }
    let mut missing = 0;
    for uu in 0..n as u32 {
        for vv in (uu + 1)..n as u32 {
            if !covered[Edge::new(uu, vv).dense_index(n)] {
                missing += 1;
            }
        }
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound::{capacity_lower_bound, rho_formula};
    use cyclecover_ring::Ring;

    #[test]
    fn greedy_always_covers() {
        for n in 4u32..=12 {
            let u = TileUniverse::new(Ring::new(n), 4);
            let tiles = greedy_cover(&u);
            assert_eq!(uncovered_count(&u, &tiles), 0, "n={n}");
        }
    }

    #[test]
    fn greedy_at_least_lower_bound_and_not_absurd() {
        for n in 5u32..=12 {
            let u = TileUniverse::new(Ring::new(n), 4);
            let tiles = greedy_cover(&u);
            let lb = capacity_lower_bound(n);
            assert!(tiles.len() as u64 >= lb, "n={n}: greedy below LB?!");
            // Greedy shouldn't be worse than 2x optimal on these tiny cases.
            assert!(
                (tiles.len() as u64) <= 2 * rho_formula(n),
                "n={n}: greedy used {} vs rho {}",
                tiles.len(),
                rho_formula(n)
            );
        }
    }

    #[test]
    fn greedy_k4_uses_three_cycles() {
        // On K4/C4 even greedy finds the paper's optimum of 3 (any covering
        // needs >= ceil(10/4) = 3).
        let u = TileUniverse::new(Ring::new(4), 4);
        let tiles = greedy_cover(&u);
        assert_eq!(tiles.len(), 3);
    }
}
