//! Greedy set-cover baseline for DRC coverings.
//!
//! The classic `ln m`-approximation applied to our tile universe: repeatedly
//! pick the tile covering the most still-uncovered requests (ties broken by
//! less wasted ring capacity, then smaller index for determinism). Used by
//! experiment E5 as the "what a straightforward engineer would ship"
//! baseline against the paper's optimal constructions, and as the seeding
//! stage of the `greedy`/`greedy-improve`/`anneal` engines in
//! [`crate::api`].
//!
//! Each pick runs on a **lazy-bucket max-coverage heap** instead of a full
//! `O(tiles)` rescan: coverage is submodular (a tile's useful coverage
//! only shrinks as others are placed), so every heap entry's stored score
//! is an upper bound on its true score. Popping the max and re-scoring it
//! is therefore sound — if the fresh score still matches, no other tile
//! can beat it; otherwise the entry is pushed back with the smaller score.
//! In practice most picks touch a handful of entries, making large-n
//! baseline generation near-linear instead of quadratic in the universe
//! size, while selecting the exact same tiles as the rescan did.

use crate::TileUniverse;
use cyclecover_graph::Edge;
use cyclecover_ring::Tile;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry: a tile and its (possibly stale) useful-coverage score.
/// Ordering matches the original scan's selection rule — more coverage
/// first, then less waste, then smaller index.
#[derive(PartialEq, Eq)]
struct Entry {
    cov: u32,
    waste: u32,
    idx: u32,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cov
            .cmp(&other.cov)
            .then_with(|| other.waste.cmp(&self.waste))
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Greedily covers all requests of `K_n`; returns the chosen tiles.
///
/// Always succeeds (every chord is itself in some triangle tile).
pub fn greedy_cover(u: &TileUniverse) -> Vec<Tile> {
    // Runs on the universe's precomputed metadata: per-tile chord bitmasks
    // scored with an intersection popcount against the uncovered set.
    let mut uncovered = crate::bitset::ChordSet::full(u.num_chords());
    let mut chosen = Vec::new();

    // Seed with exact scores (everything is uncovered, so a tile's initial
    // coverage is just its chord count). Each tile has exactly one live
    // entry: a pop either selects it, drops it (score 0), or re-inserts it
    // once with its refreshed score.
    let mut heap: BinaryHeap<Entry> = (0..u.len() as u32)
        .map(|i| Entry {
            cov: u.tile_chords(i).len() as u32,
            waste: u.tile_waste(i),
            idx: i,
        })
        .collect();

    while !uncovered.is_empty() {
        let top = heap
            .pop()
            .expect("uncovered chords remain but no tile covers any");
        let cov = u.tile_mask(top.idx).intersection_count(&uncovered);
        if cov == 0 {
            // Dead tile: coverage never grows back, drop it for good.
            continue;
        }
        if cov == top.cov {
            // Fresh score confirmed maximal: every other entry stores an
            // upper bound on its true score, and all of those are <= this.
            uncovered.subtract(u.tile_mask(top.idx));
            chosen.push(u.tile(top.idx).clone());
        } else {
            heap.push(Entry { cov, ..top });
        }
    }
    chosen
}

/// Number of requests of `K_n` left uncovered by `tiles` (0 for a valid
/// covering) — a convenience audit used in tests and benches.
pub fn uncovered_count(u: &TileUniverse, tiles: &[Tile]) -> usize {
    let ring = u.ring();
    let n = ring.n() as usize;
    let mut covered = vec![false; n * (n - 1) / 2];
    for t in tiles {
        for c in t.chords(ring) {
            covered[c.to_edge().dense_index(n)] = true;
        }
    }
    let mut missing = 0;
    for uu in 0..n as u32 {
        for vv in (uu + 1)..n as u32 {
            if !covered[Edge::new(uu, vv).dense_index(n)] {
                missing += 1;
            }
        }
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound::{capacity_lower_bound, rho_formula};
    use cyclecover_ring::Ring;

    #[test]
    fn greedy_always_covers() {
        for n in 4u32..=12 {
            let u = TileUniverse::new(Ring::new(n), 4);
            let tiles = greedy_cover(&u);
            assert_eq!(uncovered_count(&u, &tiles), 0, "n={n}");
        }
    }

    #[test]
    fn greedy_at_least_lower_bound_and_not_absurd() {
        for n in 5u32..=12 {
            let u = TileUniverse::new(Ring::new(n), 4);
            let tiles = greedy_cover(&u);
            let lb = capacity_lower_bound(n);
            assert!(tiles.len() as u64 >= lb, "n={n}: greedy below LB?!");
            // Greedy shouldn't be worse than 2x optimal on these tiny cases.
            assert!(
                (tiles.len() as u64) <= 2 * rho_formula(n),
                "n={n}: greedy used {} vs rho {}",
                tiles.len(),
                rho_formula(n)
            );
        }
    }

    #[test]
    fn greedy_k4_uses_three_cycles() {
        // On K4/C4 even greedy finds the paper's optimum of 3 (any covering
        // needs >= ceil(10/4) = 3).
        let u = TileUniverse::new(Ring::new(4), 4);
        let tiles = greedy_cover(&u);
        assert_eq!(tiles.len(), 3);
    }
}
