#!/usr/bin/env bash
# Asserts that every intra-repo markdown link in the given files (or the
# default doc set) resolves to an existing file or directory, relative
# to the linking document. External (http/mailto) links and pure
# fragment links are skipped. Exits non-zero listing every broken link.
set -u

docs=("$@")
if [ ${#docs[@]} -eq 0 ]; then
    docs=(README.md ARCHITECTURE.md docs/wire-format.md)
fi

status=0
for doc in "${docs[@]}"; do
    if [ ! -f "$doc" ]; then
        echo "missing document: $doc"
        status=1
        continue
    fi
    dir=$(dirname "$doc")
    # Inline markdown links: [text](target). Reference-style links are
    # not used in this repo.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        # Strip a trailing #fragment.
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "broken link in $doc: ($target)"
            status=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [ $status -eq 0 ]; then
    echo "all intra-repo links resolve (${docs[*]})"
fi
exit $status
