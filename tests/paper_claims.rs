//! Integration tests pinning the paper's claims across crates: the two
//! theorems, the worked example, and the survivability promise.

use cyclecover::core::{construct_optimal, construct_with_status, rho, Optimality};
use cyclecover::net::{audit_all_failures, WdmNetwork};
use cyclecover::solver::lower_bound::{capacity_lower_bound, rho_formula};

#[test]
fn theorem1_all_odd_n_up_to_151() {
    for p in 1u32..=75 {
        let n = 2 * p + 1;
        let cover = construct_optimal(n);
        assert_eq!(cover.len() as u64, (p as u64) * (p as u64 + 1) / 2, "n={n}");
        cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        // Theorem 1 composition.
        let stats = cover.stats();
        assert_eq!(stats.c3 as u64, p as u64, "n={n}");
        assert_eq!(stats.c4 as u64, (p as u64) * (p as u64 - 1) / 2, "n={n}");
        assert!(cover.is_exact_decomposition(1), "n={n}");
    }
}

#[test]
fn theorem2_all_even_n_up_to_150_except_documented_gap() {
    for p in 3u32..=75 {
        let n = 2 * p;
        let (cover, status) = construct_with_status(n);
        cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        let formula = (p as u64 * p as u64 + 1).div_ceil(2);
        assert_eq!(rho(n), formula, "n={n}");
        match status {
            Optimality::Optimal => {
                assert_eq!(cover.len() as u64, formula, "n={n}");
                assert!(n % 8 != 0 || n == 8, "unexpected optimal class n={n}");
            }
            Optimality::Excess(x) => {
                assert!(n % 8 == 0 && n >= 16, "unexpected gap at n={n}");
                assert_eq!(cover.len() as u64, formula + x as u64, "n={n}");
            }
        }
    }
}

#[test]
fn rho_exceeds_capacity_bound_exactly_for_even_p() {
    for n in 6u32..=200 {
        let diff = rho_formula(n) - capacity_lower_bound(n);
        let p = n / 2;
        if n % 2 == 0 && p % 2 == 0 && n > 4 {
            assert_eq!(diff, 1, "n={n}: Theorem 2's +1 refinement");
        } else {
            assert_eq!(diff, 0, "n={n}: capacity bound tight");
        }
    }
}

#[test]
fn survivability_holds_for_every_construction() {
    for n in [5u32, 8, 9, 12, 16, 21, 26] {
        let net = WdmNetwork::from_covering(&construct_optimal(n));
        let audit = audit_all_failures(&net);
        assert!(audit.fully_survivable, "n={n}");
        assert_eq!(
            audit.total_reroutes,
            n as usize * net.subnetworks().len(),
            "n={n}: one reroute per (failure, subnetwork)"
        );
    }
}

#[test]
fn paper_worked_example_end_to_end() {
    use cyclecover::graph::CycleSubgraph;
    use cyclecover::ring::{routing, Ring};

    let ring = Ring::new(4);
    // Bad covering rejected…
    assert!(!routing::is_drc_routable(
        ring,
        &CycleSubgraph::new(vec![0, 2, 3, 1])
    ));
    // …good covering = what construct_optimal(4) returns.
    let cover = construct_optimal(4);
    assert_eq!(cover.len(), 3);
    let stats = cover.stats();
    assert_eq!((stats.c3, stats.c4), (2, 1));
}
