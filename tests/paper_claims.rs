//! Integration tests pinning the paper's claims across crates: the two
//! theorems, the worked example, and the survivability promise.

use cyclecover::core::{construct_optimal, construct_with_status, rho, Optimality};
use cyclecover::net::{audit_all_failures, WdmNetwork};
use cyclecover::solver::lower_bound::{capacity_lower_bound, rho_formula};

#[test]
fn theorem1_all_odd_n_up_to_151() {
    for p in 1u32..=75 {
        let n = 2 * p + 1;
        let cover = construct_optimal(n);
        assert_eq!(cover.len() as u64, (p as u64) * (p as u64 + 1) / 2, "n={n}");
        cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        // Theorem 1 composition.
        let stats = cover.stats();
        assert_eq!(stats.c3 as u64, p as u64, "n={n}");
        assert_eq!(stats.c4 as u64, (p as u64) * (p as u64 - 1) / 2, "n={n}");
        assert!(cover.is_exact_decomposition(1), "n={n}");
    }
}

#[test]
fn theorem2_all_even_n_up_to_150_except_documented_gap() {
    for p in 3u32..=75 {
        let n = 2 * p;
        let (cover, status) = construct_with_status(n);
        cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        let formula = (p as u64 * p as u64 + 1).div_ceil(2);
        assert_eq!(rho(n), formula, "n={n}");
        match status {
            Optimality::Optimal => {
                assert_eq!(cover.len() as u64, formula, "n={n}");
                assert!(n % 8 != 0 || n == 8, "unexpected optimal class n={n}");
            }
            Optimality::Excess(x) => {
                assert!(n % 8 == 0 && n >= 16, "unexpected gap at n={n}");
                assert_eq!(cover.len() as u64, formula + x as u64, "n={n}");
            }
        }
    }
}

#[test]
fn rho_exceeds_capacity_bound_exactly_for_even_p() {
    for n in 6u32..=200 {
        let diff = rho_formula(n) - capacity_lower_bound(n);
        let p = n / 2;
        if n % 2 == 0 && p % 2 == 0 && n > 4 {
            assert_eq!(diff, 1, "n={n}: Theorem 2's +1 refinement");
        } else {
            assert_eq!(diff, 0, "n={n}: capacity bound tight");
        }
    }
}

#[test]
fn survivability_holds_for_every_construction() {
    for n in [5u32, 8, 9, 12, 16, 21, 26] {
        let net = WdmNetwork::from_covering(&construct_optimal(n));
        let audit = audit_all_failures(&net);
        assert!(audit.fully_survivable, "n={n}");
        assert_eq!(
            audit.total_reroutes,
            n as usize * net.subnetworks().len(),
            "n={n}: one reroute per (failure, subnetwork)"
        );
    }
}

/// The λ-fold extension table (the note's closing "other communication
/// instances such as λK_n"), pinned by the exact solver: every small
/// ρ_λ(n) sits exactly at the scaled capacity bound ⌈λ·Σd(e)/n⌉ —
/// including the even-n rows where the unit optimum does NOT (Theorem
/// 2's +1 parity refinement). Doubling the demand dissolves the parity
/// obstruction: for even n, ρ₂(n) < 2·ρ(n), so a double cover is
/// strictly cheaper than two copies of an optimal unit cover, while for
/// odd n copy-concatenation is tight (Theorem 1's partitions double
/// into partitions).
#[test]
fn lambda_fold_optima_sit_at_the_scaled_capacity_bound() {
    use cyclecover::core::lambda;
    use cyclecover::solver::api::{engine_by_name, Optimality as O, Problem, SolveRequest};

    let bitset = engine_by_name("bitset").expect("registered engine");
    for (n, lam) in [(5u32, 2u32), (5, 3), (6, 2), (6, 3), (7, 2)] {
        let sol = bitset.solve(
            &Problem::lambda_fold(n, lam),
            &SolveRequest::find_optimal().with_max_nodes(200_000_000),
        );
        assert!(
            matches!(sol.optimality(), O::Optimal { .. }),
            "n={n} λ={lam}: {:?}",
            sol.optimality()
        );
        let opt = sol.size().unwrap() as u64;
        assert_eq!(
            opt,
            lambda::capacity_lower_bound(n, lam),
            "n={n} λ={lam}: optimum off the scaled capacity bound"
        );
        let copies = lambda::upper_bound(n, lam);
        if n % 2 == 1 {
            assert_eq!(opt, copies, "odd n: copy-concatenation is tight");
        } else {
            assert!(opt < copies, "even n={n} λ={lam}: {opt} !< {copies}");
        }
    }
}

/// The n = 8 double cover closes the even-n capacity gap the unit case
/// cannot: ρ(8) = 9 = capacity + 1 (Theorem 2's parity refinement),
/// but ρ₂(8) = 16 = 2·capacity exactly — the witness found by the
/// packed λ-fold kernel on the C ≤ 4 universe meets the
/// universe-independent scaled capacity bound, so two-fold covering
/// saves two cycles over doubling the optimal unit cover (16 < 18).
#[test]
fn double_cover_at_n8_dissolves_the_parity_gap() {
    use cyclecover::core::lambda;
    use cyclecover::ring::Ring;
    use cyclecover::solver::api::{
        engine_by_name, Optimality as O, Problem, SolveRequest, SymmetryMode,
    };
    use cyclecover::solver::bnb::CoverSpec;
    use cyclecover::solver::TileUniverse;

    assert_eq!(cyclecover::core::rho(8), 9, "unit: capacity 8 + parity 1");
    assert_eq!(lambda::capacity_lower_bound(8, 2), 16);
    // Witness search on the short-cycle universe (C3/C4 tiles only —
    // enough: the capacity bound doesn't care which universe met it).
    let sol = engine_by_name("bitset").unwrap().solve(
        &Problem::new(
            TileUniverse::new(Ring::new(8), 4),
            CoverSpec::lambda_fold(8, 2),
        ),
        &SolveRequest::within_budget(16)
            .with_symmetry(SymmetryMode::Full)
            .with_max_nodes(50_000_000),
    );
    assert!(
        matches!(sol.optimality(), O::Feasible),
        "{:?}",
        sol.optimality()
    );
    assert_eq!(sol.size(), Some(16), "ρ₂(8) = 16 < 2·ρ(8) = 18");
}

#[test]
fn paper_worked_example_end_to_end() {
    use cyclecover::graph::CycleSubgraph;
    use cyclecover::ring::{routing, Ring};

    let ring = Ring::new(4);
    // Bad covering rejected…
    assert!(!routing::is_drc_routable(
        ring,
        &CycleSubgraph::new(vec![0, 2, 3, 1])
    ));
    // …good covering = what construct_optimal(4) returns.
    let cover = construct_optimal(4);
    assert_eq!(cover.len(), 3);
    let stats = cover.stats();
    assert_eq!((stats.c3, stats.c4), (2, 1));
}
