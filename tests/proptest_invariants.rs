//! Property-based tests over the workspace's core invariants.

use cyclecover::core::{construct_optimal, construct_with_status, rho, Optimality};
use cyclecover::graph::{CycleSubgraph, Edge, EdgeMultiset};
use cyclecover::ring::{routing, Ring, RingArc, Tile};
use proptest::prelude::*;

proptest! {
    /// The winding lemma: the O(k) fast path agrees with the exhaustive
    /// 2^k oracle on arbitrary cycles of arbitrary rings.
    #[test]
    fn winding_lemma_random(n in 4u32..40, seed in any::<u64>()) {
        use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let ring = Ring::new(n);
        let k = rng.gen_range(3..=6.min(n as usize));
        let mut verts: Vec<u32> = (0..n).collect();
        verts.shuffle(&mut rng);
        verts.truncate(k);
        let cyc = CycleSubgraph::new(verts);
        let fast = routing::winding_routing(ring, &cyc).is_some();
        let oracle = routing::route_cycle(ring, &cyc).is_some();
        prop_assert_eq!(fast, oracle);
    }

    /// Any winding routing is edge-disjoint with load exactly n.
    #[test]
    fn winding_routings_tile_the_ring(n in 5u32..60, seed in any::<u64>()) {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let ring = Ring::new(n);
        let mut verts: Vec<u32> = (0..n).collect();
        verts.shuffle(&mut rng);
        verts.truncate(4);
        verts.sort_unstable();
        let tile = Tile::from_vertices(ring, verts);
        let arcs = tile.arcs(ring);
        let mut occ = cyclecover::ring::ArcOccupancy::new(ring);
        for a in &arcs {
            prop_assert!(occ.try_place(ring, a));
        }
        prop_assert_eq!(occ.occupied(), n);
    }

    /// construct_optimal is valid for every n and meets rho except the
    /// documented n ≡ 0 (mod 8) gap.
    #[test]
    fn construction_valid_everywhere(n in 3u32..140) {
        let (cover, status) = construct_with_status(n);
        prop_assert!(cover.validate().is_ok());
        match status {
            Optimality::Optimal => prop_assert_eq!(cover.len() as u64, rho(n)),
            Optimality::Excess(x) => {
                prop_assert!(n % 8 == 0 && n >= 16);
                prop_assert_eq!(cover.len() as u64, rho(n) + x as u64);
            }
        }
    }

    /// Odd constructions are partitions; their interval usage is exact.
    #[test]
    fn odd_construction_partition(p in 1u32..55) {
        let n = 2 * p + 1;
        let cover = construct_optimal(n);
        prop_assert!(cover.is_exact_decomposition(1));
    }

    /// Arc complement partitions the ring, for arbitrary arcs.
    #[test]
    fn arc_complement_partitions(n in 3u32..200, start in 0u32..200, len in 1u32..199) {
        let ring = Ring::new(n);
        let start = start % n;
        let len = 1 + len % (n - 1);
        let arc = RingArc::new(ring, start, len);
        let comp = arc.complement(ring);
        prop_assert!(!arc.overlaps(ring, &comp));
        prop_assert_eq!(arc.len() + comp.len(), n);
    }

    /// Edge dense-index round trip for arbitrary graph sizes.
    #[test]
    fn edge_dense_index_roundtrip(n in 2usize..300, seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let u = rng.gen_range(0..n as u32);
        let mut v = rng.gen_range(0..n as u32);
        if u == v { v = (v + 1) % n as u32; }
        let e = Edge::new(u, v);
        let i = e.dense_index(n);
        prop_assert!(i < n * (n - 1) / 2);
        prop_assert_eq!(Edge::from_dense_index(i, n), e);
    }

    /// Coverage bookkeeping: inserting each tile's chords yields exactly
    /// the multiset the covering reports.
    #[test]
    fn coverage_multiset_consistent(n in 5u32..60) {
        let cover = construct_optimal(n);
        let ring = cover.ring();
        let mut manual = EdgeMultiset::new(n as usize);
        for t in cover.tiles() {
            for c in t.chords(ring) {
                manual.insert(c.to_edge());
            }
        }
        prop_assert!(manual == cover.coverage());
    }

    /// Tiles from gaps == tiles from vertices (representation equality).
    #[test]
    fn tile_representations_agree(n in 6u32..80, seed in any::<u64>()) {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let ring = Ring::new(n);
        let mut verts: Vec<u32> = (0..n).collect();
        verts.shuffle(&mut rng);
        verts.truncate(5);
        let tile = Tile::from_vertices(ring, verts);
        let gaps = tile.gaps(ring);
        let rebuilt = Tile::from_gaps(ring, tile.vertices()[0], &gaps);
        prop_assert_eq!(tile, rebuilt);
    }
}
