//! Full-pipeline integration: construction → validation → WDM build-out →
//! failure drill → cost accounting, across representative ring sizes.

use cyclecover::core::{construct_optimal, general, lambda};
use cyclecover::graph::builders;
use cyclecover::net::{audit_all_failures, CostModel, WdmNetwork};
use cyclecover::ring::Ring;

#[test]
fn pipeline_odd_even_and_gap_classes() {
    // One n from each construction class: odd, 2 mod 4, 4 mod 8, 8, 0 mod 8.
    for n in [11u32, 14, 12, 8, 24] {
        let cover = construct_optimal(n);
        cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));

        let net = WdmNetwork::from_covering(&cover);
        assert_eq!(net.wavelength_count(), 2 * cover.len(), "n={n}");
        assert_eq!(
            net.total_adms(),
            cover.tiles().iter().map(|t| t.len()).sum::<usize>(),
            "n={n}"
        );

        let audit = audit_all_failures(&net);
        assert!(audit.fully_survivable, "n={n}");
        assert!(audit.max_stretch >= 1.0, "n={n}");

        let cost = CostModel::blended().evaluate(&net);
        assert!(cost > 0.0, "n={n}");
    }
}

#[test]
fn lambda_pipeline() {
    let cover = lambda::construct(11, 3);
    assert!(cover.coverage().covers_complete(3));
    let net = WdmNetwork::from_covering(&cover);
    let audit = audit_all_failures(&net);
    assert!(audit.fully_survivable);
}

#[test]
fn general_instance_pipeline() {
    // A circulant instance (local traffic only) on a 15-ring.
    let inst = builders::circulant(15, &[1, 2, 3]);
    let got = general::greedy_cover(Ring::new(15), &inst, 4).expect("non-empty");
    assert!(general::covers_instance(&got.covering, &inst));
    // Local traffic should need far fewer cycles than all-to-all.
    assert!(
        got.covering.len() < cyclecover::core::construct_optimal(15).len(),
        "local instance must be cheaper than all-to-all"
    );
    let net = WdmNetwork::from_covering(&got.covering);
    let audit = audit_all_failures(&net);
    assert!(audit.fully_survivable);
}

#[test]
fn facade_reexports_work() {
    // The cyclecover umbrella crate exposes all subsystem crates.
    let _ = cyclecover::graph::builders::complete(5);
    let _ = cyclecover::ring::Ring::new(5);
    let _ = cyclecover::design::triangle_covering_number(9);
    let _ = cyclecover::solver::lower_bound::capacity_lower_bound(9);
    let _ = cyclecover::core::rho(9);
    let cover = cyclecover::core::construct_optimal(9);
    let _ = cyclecover::net::WdmNetwork::from_covering(&cover);
}
