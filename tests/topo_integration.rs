//! Integration: extension topologies end-to-end.
//!
//! Exercises the full pipeline the paper's future-work section sketches:
//! topology → covering construction → validation → wavelength
//! assignment → failure audit, across tori, grids and trees of rings,
//! with the general-graph DRC oracle cross-checking the structured
//! constructions.

use cyclecover::color::{clique_lower_bound, conflict_graph, dsatur, verify_coloring};
use cyclecover::graph::{builders, connectivity};
use cyclecover::topo::{drc, mesh_cover, protect, GridTopology, TreeOfRings, TreeOfRingsBuilder};

/// Torus pipeline: construct, validate, color, audit — all coherent.
#[test]
fn torus_full_pipeline() {
    for (r, c) in [(3u32, 4u32), (4, 4), (4, 5)] {
        let topo = GridTopology::torus(r, c);
        let inst = builders::complete(topo.vertex_count());

        // 2-edge-connectivity is what makes protection possible at all.
        assert!(connectivity::is_k_edge_connected(topo.graph(), 2));

        let cover = mesh_cover::cover_torus(&topo);
        cover.validate(topo.graph(), &inst).expect("covers K_n");

        // Wavelengths: valid coloring, at least the clique bound, and
        // strictly fewer than the no-reuse count.
        let conflicts = conflict_graph(&cover.footprints());
        let coloring = dsatur(&conflicts);
        assert!(verify_coloring(&conflicts, &coloring));
        assert!(coloring.count >= clique_lower_bound(&conflicts));
        assert!(
            (coloring.count as usize) < cover.len(),
            "{r}x{c}: torus must allow some wavelength reuse"
        );

        // Survivability, exhaustively.
        let audit = protect::audit_link_failures(topo.graph(), &cover);
        assert!(audit.fully_survivable, "{r}x{c}");
    }
}

/// Every structured torus cycle is independently confirmed routable by
/// the exact DRC oracle (constructions don't get to grade their own
/// homework).
#[test]
fn oracle_confirms_structured_torus_cycles() {
    let topo = GridTopology::torus(3, 4);
    let cover = mesh_cover::cover_torus(&topo);
    let slack = topo.vertex_count() as u32;
    for rc in cover.cycles() {
        let out = drc::route_cycle(topo.graph(), &rc.cycle, slack, drc::DEFAULT_BUDGET);
        assert!(out.is_routed(), "oracle rejects {:?}", rc.cycle);
    }
}

/// Grid pipeline, plus the structural grid-vs-torus comparison.
#[test]
fn grid_full_pipeline() {
    let grid = GridTopology::grid(3, 4);
    let inst = builders::complete(12);
    let cover = mesh_cover::cover_grid(&grid);
    cover.validate(grid.graph(), &inst).expect("covers K_12");
    let audit = protect::audit_link_failures(grid.graph(), &cover);
    assert!(audit.fully_survivable);

    let torus_cycles = mesh_cover::cover_torus(&GridTopology::torus(3, 4)).len();
    assert!(torus_cycles < cover.len(), "wraparound must help");
}

/// Tree of rings: end-to-end request survives any single link failure by
/// composing the per-ring protections — verified by materializing the
/// post-failure path for every (request, failure) pair.
#[test]
fn tree_of_rings_end_to_end_failure_composition() {
    let t = TreeOfRings::chain(3, 5);
    let inst = builders::complete(t.vertex_count());
    let cover = t.cover(&inst, 4);
    let audit = protect::audit_link_failures(t.graph(), &cover);
    assert!(audit.fully_survivable);

    // Composition check: for every request, its working path decomposes
    // into segments whose rings partition the path's edges; a failure in
    // one ring leaves all other segments' edges untouched.
    let n = t.vertex_count() as u32;
    for u in 0..n {
        for v in (u + 1)..n {
            let path = t.working_path(u, v);
            let segs = t.segments(u, v);
            // Segment endpoints really lie on their rings, and the
            // working path has at least one hop per segment.
            for (rid, a, b) in &segs {
                let node = &t.rings()[*rid as usize];
                assert!(node.position_of(*a).is_some() && node.position_of(*b).is_some());
            }
            assert!(path.len() > segs.len());
        }
    }
}

/// Hubs are cut vertices: removing a hub's ring edges separates subtrees
/// (structural sanity of the builder).
#[test]
fn tree_of_rings_structure() {
    let mut b = TreeOfRingsBuilder::root(5);
    let c1 = b.attach(0, 2, 4);
    let _c2 = b.attach(c1, 6, 4);
    let t = b.build();
    assert_eq!(connectivity::edge_connectivity(t.graph()), 2);
    assert!(connectivity::bridges(t.graph()).is_empty());
    // Every edge belongs to exactly one ring.
    for ei in 0..t.graph().edge_count() as u32 {
        let rid = t.ring_of_edge(ei);
        assert!((rid as usize) < t.rings().len());
    }
}

/// Node failures on the torus: the audit reports the honest split
/// (terminating / restored / unprotected) and never overcounts.
#[test]
fn torus_node_failures_accounted() {
    let topo = GridTopology::torus(3, 4);
    let cover = mesh_cover::cover_torus(&topo);
    let total_paths: usize = cover.cycles().iter().map(|rc| rc.routing.paths.len()).sum();
    for v in 0..topo.vertex_count() as u32 {
        let rep = protect::audit_node_failure(topo.graph(), &cover, v);
        assert!(rep.terminating + rep.restored + rep.unprotected <= total_paths);
        assert!(rep.terminating > 0, "every node terminates some demand");
    }
}

/// The path-topology impossibility (core::path) agrees with the general
/// oracle on 1×C grids: no covering cycle can exist.
#[test]
fn degenerate_grid_is_a_path() {
    use cyclecover::graph::CycleSubgraph;
    let line = GridTopology::grid(1, 6);
    for cyc in [
        CycleSubgraph::new(vec![0, 2, 4]),
        CycleSubgraph::new(vec![1, 3, 5]),
        CycleSubgraph::new(vec![0, 2, 3, 5]),
    ] {
        assert!(
            !drc::is_drc_routable(line.graph(), &cyc, 6),
            "{cyc:?} routed on a path?!"
        );
    }
}
