//! Cross-validation: the closed-form constructions against the exhaustive
//! solver, the greedy baseline, and the design-theory substrate.

use cyclecover::core::rho;
use cyclecover::design::{greedy_triangle_cover, triangle_covering_number};
use cyclecover::ring::{Ring, Tile};
use cyclecover::solver::api::{engine_by_name, Optimality, Problem, SolveRequest};
use cyclecover::solver::{greedy, TileUniverse};

/// The solver must reproduce rho(n) independently of the constructions.
#[test]
fn solver_confirms_formulas_small_n() {
    let engine = engine_by_name("bitset").expect("registered engine");
    for n in 4u32..=9 {
        let sol = engine.solve(
            &Problem::complete(n),
            &SolveRequest::find_optimal().with_max_nodes(1_000_000_000),
        );
        assert!(
            matches!(sol.optimality(), Optimality::Optimal { .. }),
            "n={n}: {:?}",
            sol.optimality()
        );
        let tiles = sol.covering().expect("optimal solutions carry coverings");
        assert_eq!(tiles.len() as u64, rho(n), "n={n}");
        // And its solution is a genuine covering.
        let cover = cyclecover::core::DrcCovering::from_tiles(Ring::new(n), tiles.to_vec());
        cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

/// No baseline may beat the construction (optimality sanity).
#[test]
fn baselines_never_beat_rho() {
    for n in 5u32..=24 {
        let u = TileUniverse::new(Ring::new(n), 4);
        let g = greedy::greedy_cover(&u).len() as u64;
        assert!(g >= rho(n), "n={n}: greedy {g} beat rho {}?!", rho(n));

        let tri = greedy_triangle_cover(n as usize).len() as u64;
        assert!(tri >= rho(n), "n={n}: triangles beat rho?!");
        assert!(tri >= triangle_covering_number(n as u64), "n={n}");
    }
}

/// Triangle coverings are automatically DRC-valid — the bridge between
/// the design-theory substrate and the ring model.
#[test]
fn triangle_covers_are_drc_coverings() {
    for n in [7u32, 9, 12, 15] {
        let ring = Ring::new(n);
        let tiles: Vec<Tile> = greedy_triangle_cover(n as usize)
            .into_iter()
            .map(|t| Tile::from_vertices(ring, t.to_vec()))
            .collect();
        let cover = cyclecover::core::DrcCovering::from_tiles(ring, tiles);
        cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

/// Bose Steiner triple systems give DRC partitions for n ≡ 3 (mod 6) —
/// optimal among triangle-only coverings, ~4/3 above rho.
#[test]
fn bose_sts_as_drc_covering() {
    for n in [9usize, 15, 21] {
        let ring = Ring::new(n as u32);
        let triples = cyclecover::design::bose_steiner_triple_system(n);
        let tiles: Vec<Tile> = triples
            .iter()
            .map(|t| Tile::from_vertices(ring, t.to_vec()))
            .collect();
        let cover = cyclecover::core::DrcCovering::from_tiles(ring, tiles);
        cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        assert!(cover.is_exact_decomposition(1), "STS is a partition");
        let ratio = cover.len() as f64 / rho(n as u32) as f64;
        assert!(
            (1.15..1.5).contains(&ratio),
            "n={n}: triangle/rho ratio {ratio} should approach 4/3"
        );
    }
}

/// The n=8 certification pair: budget 8 infeasible, budget 9 feasible —
/// the parity +1 of Theorem 2 in executable form.
#[test]
fn n8_plus_one_certificate() {
    let engine = engine_by_name("bitset").expect("registered engine");
    let problem = Problem::complete(8);
    let below = engine.solve(
        &problem,
        &SolveRequest::prove_infeasible(8).with_max_nodes(500_000_000),
    );
    assert!(matches!(below.optimality(), Optimality::Infeasible));
    let at = engine.solve(
        &problem,
        &SolveRequest::within_budget(9).with_max_nodes(500_000_000),
    );
    assert!(matches!(at.optimality(), Optimality::Feasible));
}
