//! Property-based tests over the extension subsystems.
//!
//! Random topologies, random workloads, random demand sets — the
//! invariants that must hold regardless of shape:
//!
//! * every tree-of-rings covering validates against its segment instance
//!   and survives every single-link failure;
//! * routing alignment is insensitive to path order/orientation;
//! * the ring-loading solver chain is monotone (optimal ≤ local ≤
//!   shortest, all ≥ the capacity bound) on arbitrary demand sets;
//! * text-format round-trips preserve coverings exactly;
//! * workload generators produce well-formed simple instances that the
//!   general-instance machinery covers.

use cyclecover::core::general;
use cyclecover::graph::builders;
use cyclecover::io::format;
use cyclecover::ring::loading;
use cyclecover::ring::Ring;
use cyclecover::topo::{drc, protect, TreeOfRingsBuilder};
use cyclecover::workload;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random trees of rings (random attachment points and lengths):
    /// cover → validate → audit, end to end.
    #[test]
    fn random_tree_of_rings_is_survivable(
        root_len in 3u32..7,
        attachments in prop::collection::vec((0usize..3, 3u32..6), 0..4),
    ) {
        let mut b = TreeOfRingsBuilder::root(root_len);
        let mut ring_count = 1usize;
        #[allow(clippy::explicit_counter_loop)]
        for (parent_seed, len) in attachments {
            let parent = (parent_seed % ring_count) as u32;
            // Hub: any vertex of the parent ring (deterministic pick).
            let hub = {
                // Rebuild is cheap; builder exposes rings via build() only,
                // so track hubs by construction: parent ring's vertex 1.
                // The builder validates membership, so a bad pick panics.
                parent_ring_vertex(&b, parent, 1)
            };
            b.attach(parent, hub, len);
            ring_count += 1;
        }
        let t = b.build();
        let inst = builders::complete(t.vertex_count());
        let cover = t.cover(&inst, 4);
        let seg = t.segment_instance(&inst);
        prop_assert!(cover.validate(t.graph(), &seg).is_ok());
        let audit = protect::audit_link_failures(t.graph(), &cover);
        prop_assert!(audit.fully_survivable);
    }

    /// align_routing: any rotation/reversal of a valid routing's paths
    /// aligns back to a verifying routing.
    #[test]
    fn alignment_is_order_insensitive(n in 5u32..10, rot in 0usize..4, rev in any::<bool>()) {
        use cyclecover::graph::CycleSubgraph;
        let g = builders::cycle(n as usize);
        let cyc = CycleSubgraph::new(vec![0, 1, 3, (n - 1).max(4)]);
        if let Some(routing) = drc::route_cycle(&g, &cyc, n, drc::DEFAULT_BUDGET).routing() {
            let mut paths = routing.paths.clone();
            let k = paths.len();
            paths.rotate_left(rot % k);
            if rev {
                for p in &mut paths {
                    p.vertices.reverse();
                    p.edges.reverse();
                }
            }
            let shuffled = drc::CycleRouting { paths };
            let aligned = drc::align_routing(&cyc, shuffled).expect("alignment exists");
            prop_assert!(drc::verify_routing(&g, &cyc, &aligned));
        }
    }

    /// Ring loading: solver chain monotone on random demand multisets.
    #[test]
    fn loading_chain_monotone(
        n in 5u32..12,
        picks in prop::collection::vec((0u32..100, 1u32..100), 1..12),
    ) {
        let ring = Ring::new(n);
        let demands: Vec<_> = picks
            .into_iter()
            .map(|(a, d)| {
                let u = a % n;
                let v = (u + 1 + d % (n - 1)) % n;
                cyclecover::graph::Edge::new(u, v)
            })
            .collect();
        let s = loading::shortest_loading(ring, &demands);
        let l = loading::local_search_loading(ring, &demands);
        let lb = loading::loading_lower_bound(ring, &demands);
        prop_assert!(l.max_load <= s.max_load);
        prop_assert!(s.max_load as u64 >= lb as u64);
        if let Some(o) = loading::optimal_loading(ring, &demands, 2_000_000) {
            prop_assert!(o.max_load <= l.max_load);
            prop_assert!(o.max_load >= lb);
        }
        // Load vectors account exactly for the arcs chosen.
        let total: u32 = l.load.iter().sum();
        let arcs_total: u32 = l.arcs.iter().map(|a| a.len()).sum();
        prop_assert_eq!(total, arcs_total);
    }

    /// Text format: serialize → parse → serialize is a fixpoint, for the
    /// constructed covering of any n.
    #[test]
    fn format_round_trip(n in 3u32..40) {
        let cover = cyclecover::core::construct_optimal(n);
        let text = format::to_text(&cover);
        let back = format::from_text(&text).expect("parses");
        prop_assert_eq!(back.len(), cover.len());
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(format::to_text(&back), text);
    }

    /// Workload generators emit simple instances on the right vertex set,
    /// and the ring machinery covers them.
    #[test]
    fn workloads_are_coverable(n in 6usize..14, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let ring = Ring::new(n as u32);
        for inst in [
            workload::uniform_random(n, 0.4, &mut rng),
            workload::permutation(n, &mut rng),
            workload::hotspot(n, 2, 0.7, 0.1, &mut rng),
            workload::locality(n, 2),
        ] {
            prop_assert!(inst.is_simple());
            prop_assert!(inst.vertex_count() == n);
            if inst.edge_count() == 0 {
                continue;
            }
            let got = general::greedy_cover(ring, &inst, 4).expect("nonempty");
            prop_assert!(general::covers_instance(&got.covering, &inst));
        }
    }
}

/// Helper: global id of `pos` on ring `rid` as the builder will lay it
/// out (mirrors `TreeOfRingsBuilder` bookkeeping — verified by `attach`
/// panicking on non-members).
fn parent_ring_vertex(b: &TreeOfRingsBuilder, rid: u32, pos: usize) -> u32 {
    // The builder's rings are reachable only at build time; cheapest
    // correct approach: clone, build, read, and use the id on the
    // original builder (ids are assigned deterministically).
    let snapshot = b.clone().build();
    let node = &snapshot.rings()[rid as usize];
    node.verts[pos % node.verts.len()]
}
